//! The simulated address space.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::Arc;

use crate::addr::Addr;
use crate::fault::{AccessKind, MemFault};
use crate::page::{Page, PAGE_SIZE};
use crate::perm::Perms;
use crate::region::{Region, RegionId};
use crate::snapshot::MemSnapshot;
use crate::table::{self, Root, VA_LIMIT};
use crate::tlb::{Tlb, TlbStats};

/// A sparse, paged, checkpointable address space backed by a multi-level
/// page table.
///
/// `SimMemory` stands in for the native process memory First-Aid operates
/// on. It provides:
///
/// * region mapping with `sbrk`-style growth for the simulated heap,
/// * byte/word reads and writes with fault detection,
/// * per-page permission bits ([`Perms`]) flipped with [`Self::protect`] —
///   the MMU primitive behind guard pages and poison-on-free,
/// * O(1) copy-on-write snapshots for checkpointing,
/// * dirty-page accounting for the adaptive checkpoint controller.
///
/// # Structure
///
/// Addresses translate through a 3-level radix page table
/// ([`crate::table`]): 9 bits per level, 4 KiB pages, 39-bit virtual
/// address space. Each [`crate::table::PageEntry`] carries an optional
/// backing frame plus permission bits; pages of a mapped region default to
/// [`Perms::RW`] and materialize lazily, zero-filled, on first store, like
/// anonymous mappings handed out by the kernel. Reads of mapped but
/// untouched pages observe zeros and never materialize frames.
///
/// All table nodes are `Arc`-shared with snapshots: [`Self::snapshot`] is
/// an `Arc` clone of the root, [`Self::restore`] a root swap, and a store
/// after a snapshot path-copies the spine and replicates one frame.
///
/// # Translation cache
///
/// A direct-mapped, 64-entry TLB ([`crate::tlb`]) fronts the walk,
/// caching effective page permissions. Entries are epoch-invalidated by
/// every `map`/`unmap`/`grow_region`/`protect`/`restore`; pages straddling
/// a region boundary are never cached, preserving byte-exact
/// single-region containment faults at region edges. A one-entry region
/// cache additionally keeps [`Self::region_of`] off the binary search on
/// clustered lookups.
pub struct SimMemory {
    /// Mapped regions, sorted by start address.
    regions: Vec<Region>,
    /// Page-table root, `Arc`-shared with outstanding snapshots.
    root: Arc<Root>,
    /// Page numbers written since the last [`Self::take_dirty_pages`] call.
    dirty: BTreeSet<u64>,
    /// Number of materialized frames.
    resident: usize,
    /// Next region id to hand out.
    next_region: u32,
    /// Translation-cache generation; bumped by every operation that can
    /// change a page's effective permissions or region containment.
    epoch: u64,
    /// Total bytes read since creation (not rolled back by `restore`).
    bytes_read: u64,
    /// Total bytes written since creation (not rolled back by `restore`).
    bytes_written: u64,
    /// Frames replicated by stores to snapshot-shared pages.
    cow_faults: u64,
    /// Permission/translation cache in front of the table walk.
    tlb: Tlb,
    /// One-entry region-lookup cache: index into `regions` of the last hit.
    rcache: Cell<Option<usize>>,
}

impl Clone for SimMemory {
    fn clone(&self) -> Self {
        SimMemory {
            regions: self.regions.clone(),
            // The table becomes shared between the copies; the next store
            // on either side path-copies via `Arc::make_mut`.
            root: Arc::clone(&self.root),
            dirty: self.dirty.clone(),
            resident: self.resident,
            next_region: self.next_region,
            epoch: self.epoch,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            cow_faults: self.cow_faults,
            tlb: self.tlb.clone(),
            rcache: self.rcache.clone(),
        }
    }
}

impl SimMemory {
    /// Creates an empty address space with no mapped regions.
    pub fn new() -> Self {
        SimMemory {
            regions: Vec::new(),
            root: Arc::new(Root::new()),
            dirty: BTreeSet::new(),
            resident: 0,
            next_region: 0,
            epoch: 0,
            bytes_read: 0,
            bytes_written: 0,
            cow_faults: 0,
            tlb: Tlb::new(),
            rcache: Cell::new(None),
        }
    }

    // ------------------------------------------------------------------
    // Region management
    // ------------------------------------------------------------------

    /// Maps a new region `[start, start + len)`.
    ///
    /// Returns the region's id, [`MemFault::MapOverlap`] if the range
    /// intersects an existing region, or [`MemFault::BeyondAddressSpace`]
    /// if it exceeds the 39-bit simulated address space.
    pub fn map(&mut self, start: Addr, len: u64, name: &str) -> Result<RegionId, MemFault> {
        let end = start
            .0
            .checked_add(len)
            .filter(|&end| end <= VA_LIMIT)
            .ok_or(MemFault::BeyondAddressSpace { addr: start, len })?;
        if self.regions.iter().any(|r| r.overlaps(start, len)) {
            return Err(MemFault::MapOverlap { addr: start, len });
        }
        let id = RegionId(self.next_region);
        self.next_region += 1;
        let region = Region {
            id,
            start,
            end: Addr(end),
            name: name.to_owned(),
        };
        let pos = self.regions.partition_point(|r| r.start < region.start);
        self.regions.insert(pos, region);
        self.rcache.set(None);
        self.epoch += 1;
        Ok(id)
    }

    /// Maps a new trap-on-access region: every page is protected
    /// [`Perms::GUARD`]. Convenience for free-standing red zones; the
    /// sentry tier flips individual pages with [`Self::protect`] instead.
    pub fn map_guarded(&mut self, start: Addr, len: u64, name: &str) -> Result<RegionId, MemFault> {
        let id = self.map(start, len, name)?;
        self.protect(start, len, Perms::GUARD)
            .expect("freshly mapped range must be protectable");
        Ok(id)
    }

    /// Removes a region and drops the page-table entries it exclusively
    /// owned. Entries of pages straddling a boundary shared with a
    /// neighbouring region survive (with the neighbour's bytes intact).
    pub fn unmap(&mut self, id: RegionId) -> Result<(), MemFault> {
        let pos = self
            .regions
            .iter()
            .position(|r| r.id == id)
            .ok_or(MemFault::NoSuchRegion)?;
        self.rcache.set(None);
        self.epoch += 1;
        let region = self.regions.remove(pos);
        self.reclaim_range(region.start, region.end);
        Ok(())
    }

    /// Grows (or shrinks) a region to end at `new_end`, the `sbrk` analog.
    ///
    /// Shrinking drops the pages of the vacated range that no region still
    /// overlaps. Growing fails with [`MemFault::MapOverlap`] if the new
    /// range would collide with the next region, or
    /// [`MemFault::BeyondAddressSpace`] past the 39-bit space.
    pub fn grow_region(&mut self, id: RegionId, new_end: Addr) -> Result<(), MemFault> {
        let pos = self
            .regions
            .iter()
            .position(|r| r.id == id)
            .ok_or(MemFault::NoSuchRegion)?;
        if new_end < self.regions[pos].start {
            return Err(MemFault::NoSuchRegion);
        }
        if new_end.0 > VA_LIMIT {
            return Err(MemFault::BeyondAddressSpace {
                addr: self.regions[pos].start,
                len: new_end - self.regions[pos].start,
            });
        }
        if let Some(next) = self.regions.get(pos + 1) {
            if new_end.0 > next.start.0 {
                return Err(MemFault::MapOverlap {
                    addr: next.start,
                    len: new_end - next.start,
                });
            }
        }
        let old_end = self.regions[pos].end;
        self.regions[pos].end = new_end;
        self.rcache.set(None);
        self.epoch += 1;
        if new_end < old_end {
            self.reclaim_range(new_end, old_end);
        }
        Ok(())
    }

    /// Drops page-table entries of the dead range `[start, end)` that no
    /// mapped region still overlaps.
    ///
    /// Regions are disjoint, so only the two *boundary* pages of the range
    /// can be shared — with a neighbouring region or with the retained
    /// prefix of a shrunk region; interior pages are reclaimed
    /// unconditionally (whole subtrees at a time — cost is proportional to
    /// materialized nodes, not range size). Spared boundary entries keep
    /// both frame and permission bits. Called after the region list has
    /// been updated.
    fn reclaim_range(&mut self, start: Addr, end: Addr) {
        if end <= start {
            return;
        }
        let first = start.page();
        let last = end.back(1).page();
        let spared = |regions: &[Region], pageno: u64| {
            let page_start = Addr(pageno * PAGE_SIZE as u64);
            regions
                .iter()
                .any(|r| r.overlaps(page_start, PAGE_SIZE as u64))
        };
        let mut lo = first;
        let mut hi = last;
        if spared(&self.regions, first) {
            lo += 1;
        }
        if spared(&self.regions, last) {
            // `last < lo` below covers the single-page fully-spared case.
            hi = hi.wrapping_sub(1);
        }
        if lo > hi || hi == u64::MAX {
            return;
        }
        self.clear_pages(lo, hi);
    }

    /// Removes all page-table entries in `[lo, hi]`, dropping fully
    /// covered subtrees wholesale.
    fn clear_pages(&mut self, lo: u64, hi: u64) {
        const L1_SPAN: u64 = 1 << 9; // pages per leaf
        const L2_SPAN: u64 = 1 << 18; // pages per mid table
        let mut removed = 0usize;
        let root = Arc::make_mut(&mut self.root);
        for i2 in (lo / L2_SPAN)..=(hi / L2_SPAN) {
            let slot2 = &mut root.children[i2 as usize];
            let Some(mid_arc) = slot2.as_mut() else {
                continue;
            };
            let base2 = i2 * L2_SPAN;
            if lo <= base2 && base2 + L2_SPAN - 1 <= hi {
                removed += mid_arc.frames();
                *slot2 = None;
                continue;
            }
            let mid = Arc::make_mut(mid_arc);
            let sub_lo = lo.max(base2);
            let sub_hi = hi.min(base2 + L2_SPAN - 1);
            for i1 in (sub_lo / L1_SPAN)..=(sub_hi / L1_SPAN) {
                let slot1 = &mut mid.children[(i1 % L1_SPAN) as usize];
                let Some(leaf_arc) = slot1.as_mut() else {
                    continue;
                };
                let base1 = i1 * L1_SPAN;
                if lo <= base1 && base1 + L1_SPAN - 1 <= hi {
                    removed += leaf_arc.frames();
                    *slot1 = None;
                    continue;
                }
                let leaf = Arc::make_mut(leaf_arc);
                for pageno in sub_lo.max(base1)..=sub_hi.min(base1 + L1_SPAN - 1) {
                    let entry = &mut leaf.entries[(pageno % L1_SPAN) as usize];
                    if entry.frame.is_some() {
                        removed += 1;
                    }
                    *entry = table::PageEntry::vacant();
                }
                if leaf.is_empty() {
                    *slot1 = None;
                }
            }
            if mid.is_empty() {
                *slot2 = None;
            }
        }
        self.resident -= removed;
        self.dirty.retain(|&p| p < lo || p > hi);
    }

    /// Returns the region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&Region> {
        // Fast path: the last region that satisfied a lookup, re-verified
        // against its live bounds (indices shift on map/unmap, so those
        // invalidate the cache outright).
        if let Some(i) = self.rcache.get() {
            if let Some(r) = self.regions.get(i) {
                if r.start <= addr && addr < r.end {
                    return Some(r);
                }
            }
        }
        let pos = self.regions.partition_point(|r| r.start.0 <= addr.0);
        let i = pos.checked_sub(1)?;
        let r = &self.regions[i];
        if addr < r.end {
            self.rcache.set(Some(i));
            Some(r)
        } else {
            None
        }
    }

    /// Returns the region with the given id, if mapped.
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Returns all mapped regions in address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    // ------------------------------------------------------------------
    // Permissions
    // ------------------------------------------------------------------

    /// Sets the permission bits of every page covered by
    /// `[addr, addr + len)` — the `mprotect` analog, and the O(1)-per-page
    /// primitive behind guard-page install and poison-on-free.
    ///
    /// The range must lie within a single mapped region
    /// ([`MemFault::NoSuchRegion`] otherwise). [`Perms::COW`] is dynamic
    /// and masked off; pass [`Perms::RW`] to restore the mapped default.
    /// No frame is allocated or freed: page contents survive a
    /// protect/unprotect round trip.
    pub fn protect(&mut self, addr: Addr, len: u64, perms: Perms) -> Result<(), MemFault> {
        let perms = perms & Perms::STORABLE;
        match self.region_of(addr) {
            Some(r) if r.contains_range(addr, len) => {}
            _ => return Err(MemFault::NoSuchRegion),
        }
        if len == 0 {
            return Ok(());
        }
        let first = addr.page();
        let last = addr.offset(len - 1).page();
        for pageno in first..=last {
            table::walk_mut(&mut self.root, pageno).perms = perms;
        }
        self.epoch += 1;
        Ok(())
    }

    /// Returns the effective permissions of the page containing `addr`,
    /// or `None` if no region maps it.
    ///
    /// [`Perms::COW`] is reported dynamically: set when the page has a
    /// backing frame that a store would replicate (frame or table spine
    /// shared with a snapshot or clone).
    pub fn perms_of(&self, addr: Addr) -> Option<Perms> {
        self.region_of(addr)?;
        let pageno = addr.page();
        let entry = table::walk(&self.root, pageno);
        let stored = entry.map_or(Perms::RW, |e| e.perms);
        let cow = entry.is_some_and(|e| e.frame.is_some())
            && table::path_shared(&self.root, pageno) == Some(true);
        Some(if cow { stored | Perms::COW } else { stored })
    }

    /// Validates an access: region containment plus per-page permission
    /// bits. Single-page accesses are served from the TLB when possible.
    fn access_check(&mut self, addr: Addr, len: u64, kind: AccessKind) -> Result<(), MemFault> {
        let first = addr.page();
        let last = if len == 0 {
            first
        } else {
            addr.offset(len - 1).page()
        };
        if first == last {
            if let Some(perms) = self.tlb.lookup(first, self.epoch) {
                // A cached entry proves the page lies entirely inside one
                // region, so the (single-page) access is contained too.
                return Self::check_perms(perms, addr, len, kind);
            }
        }
        self.tlb.count_miss();
        let (r_start, r_end) = match self.region_of(addr) {
            Some(r) if r.contains_range(addr, len) => (r.start.0, r.end.0),
            _ => return Err(MemFault::AccessViolation { addr, kind, len }),
        };
        for pageno in first..=last {
            let perms = table::walk(&self.root, pageno).map_or(Perms::RW, |e| e.perms);
            Self::check_perms(perms, addr, len, kind)?;
            // Cache only pages fully inside the region: boundary pages
            // keep byte-exact containment checks on the slow path.
            let page_start = pageno * PAGE_SIZE as u64;
            if r_start <= page_start && page_start + PAGE_SIZE as u64 <= r_end {
                self.tlb.insert(pageno, perms, self.epoch);
            }
        }
        Ok(())
    }

    fn check_perms(perms: Perms, addr: Addr, len: u64, kind: AccessKind) -> Result<(), MemFault> {
        if perms.traps() {
            return Err(MemFault::GuardTrap { addr, kind, len });
        }
        let allowed = match kind {
            AccessKind::Read => perms.contains(Perms::READ),
            AccessKind::Write => perms.contains(Perms::WRITE),
        };
        if allowed {
            Ok(())
        } else {
            Err(MemFault::AccessViolation { addr, kind, len })
        }
    }

    // ------------------------------------------------------------------
    // Data access
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&mut self, addr: Addr, buf: &mut [u8]) -> Result<(), MemFault> {
        self.access_check(addr, buf.len() as u64, AccessKind::Read)?;
        self.bytes_read += buf.len() as u64;
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < buf.len() {
            let in_page = PAGE_SIZE - cursor.page_offset();
            let take = in_page.min(buf.len() - filled);
            // Reads walk the table read-only: they must not materialize
            // frames or path-copy shared nodes.
            match table::walk(&self.root, cursor.page()).and_then(|e| e.frame.as_ref()) {
                Some(frame) => {
                    let off = cursor.page_offset();
                    buf[filled..filled + take].copy_from_slice(&frame.bytes()[off..off + take]);
                }
                None => buf[filled..filled + take].fill(0),
            }
            filled += take;
            cursor = cursor.offset(take as u64);
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: Addr, buf: &[u8]) -> Result<(), MemFault> {
        self.access_check(addr, buf.len() as u64, AccessKind::Write)?;
        self.bytes_written += buf.len() as u64;
        let mut cursor = addr;
        let mut taken = 0usize;
        while taken < buf.len() {
            let in_page = PAGE_SIZE - cursor.page_offset();
            let take = in_page.min(buf.len() - taken);
            let pageno = cursor.page();
            let entry = table::walk_mut(&mut self.root, pageno);
            let frame = match &mut entry.frame {
                Some(frame) => {
                    if Arc::strong_count(frame) > 1 {
                        self.cow_faults += 1;
                    }
                    Arc::make_mut(frame)
                }
                None => {
                    self.resident += 1;
                    Arc::make_mut(entry.frame.insert(Arc::new(Page::zeroed())))
                }
            };
            let off = cursor.page_offset();
            frame.bytes_mut()[off..off + take].copy_from_slice(&buf[taken..taken + take]);
            if !self.tlb.note_dirty(pageno, self.epoch) {
                self.dirty.insert(pageno);
            }
            taken += take;
            cursor = cursor.offset(take as u64);
        }
        Ok(())
    }

    /// Reads `len` bytes into a fresh vector.
    pub fn read_bytes(&mut self, addr: Addr, len: u64) -> Result<Vec<u8>, MemFault> {
        let mut buf = vec![0u8; len as usize];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, addr: Addr) -> Result<u64, MemFault> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, addr: Addr) -> Result<u32, MemFault> {
        let mut buf = [0u8; 4];
        self.read(addr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, value: u32) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: Addr) -> Result<u8, MemFault> {
        let mut buf = [0u8; 1];
        self.read(addr, &mut buf)?;
        Ok(buf[0])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> Result<(), MemFault> {
        self.write(addr, &[value])
    }

    /// Fills `[addr, addr + len)` with `byte`.
    pub fn fill(&mut self, addr: Addr, len: u64, byte: u8) -> Result<(), MemFault> {
        // Chunked to avoid a giant temporary for large fills.
        const CHUNK: usize = PAGE_SIZE;
        let tmp = [byte; CHUNK];
        let mut cursor = addr;
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(CHUNK as u64);
            self.write(cursor, &tmp[..take as usize])?;
            cursor = cursor.offset(take);
            remaining -= take;
        }
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` through a page-sized stack
    /// buffer — overlap-safe in both directions (`memmove`), without
    /// allocating a `len`-sized temporary.
    ///
    /// Both ranges are validated up front, so a fault leaves the
    /// destination unmodified.
    pub fn copy(&mut self, dst: Addr, src: Addr, len: u64) -> Result<(), MemFault> {
        self.access_check(src, len, AccessKind::Read)?;
        self.access_check(dst, len, AccessKind::Write)?;
        const CHUNK: u64 = PAGE_SIZE as u64;
        let mut tmp = [0u8; PAGE_SIZE];
        if dst.0 <= src.0 {
            // Ascending chunks: writes only clobber source bytes at or
            // below the chunk already buffered in `tmp`.
            let mut done = 0u64;
            while done < len {
                let take = (len - done).min(CHUNK) as usize;
                self.read(src.offset(done), &mut tmp[..take])?;
                self.write(dst.offset(done), &tmp[..take])?;
                done += take as u64;
            }
        } else {
            // Descending chunks: writes land above the source bytes still
            // to be read.
            let mut remaining = len;
            while remaining > 0 {
                let take = remaining.min(CHUNK) as usize;
                remaining -= take as u64;
                self.read(src.offset(remaining), &mut tmp[..take])?;
                self.write(dst.offset(remaining), &tmp[..take])?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Takes a copy-on-write snapshot of the entire address space.
    ///
    /// O(1): an `Arc` clone of the page-table root. Cost accrues later,
    /// per *written* page, as stores path-copy the shared spine — the
    /// fork analog.
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            regions: self.regions.clone(),
            root: Arc::clone(&self.root),
            resident: self.resident,
            next_region: self.next_region,
        }
    }

    /// Restores the address space from a snapshot, discarding all changes
    /// made after it was taken.
    ///
    /// O(1): swaps the page-table root back to the snapshot's. Pages
    /// still shared with the snapshot are untouched; diverged spine nodes
    /// and frames are simply dropped, so resetting a pooled trial context
    /// (the slab-reuse hot path in fa-exec) costs only the free of the
    /// diverged state.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        self.root = Arc::clone(&snap.root);
        self.resident = snap.resident;
        self.regions.clone_from(&snap.regions);
        self.next_region = snap.next_region;
        self.dirty.clear();
        self.epoch += 1;
        self.rcache.set(None);
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Returns and clears the count of pages dirtied since the last call.
    ///
    /// This is the COW page rate input of the adaptive checkpoint-interval
    /// controller (paper §3, "Lightweight checkpoint/rollback").
    pub fn take_dirty_pages(&mut self) -> usize {
        let n = self.dirty.len();
        self.dirty.clear();
        self.tlb.clear_dirty();
        n
    }

    /// Returns the count of pages dirtied since the last
    /// [`Self::take_dirty_pages`] without clearing it.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }

    /// Returns the number of materialized (resident) pages.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Returns the total size of all mapped regions in bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.iter().map(Region::len).sum()
    }

    /// Returns total bytes read through this address space since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Returns total bytes written through this address space since
    /// creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Returns hit/miss counters of the translation cache.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Returns the number of frames replicated by stores to
    /// snapshot-shared pages since creation (the COW fault count).
    pub fn cow_faults(&self) -> u64 {
        self.cow_faults
    }
}

impl Default for SimMemory {
    fn default() -> Self {
        SimMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped() -> (SimMemory, Addr) {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        (mem, base)
    }

    #[test]
    fn zero_filled_on_first_read() {
        let (mut mem, base) = mapped();
        assert_eq!(mem.read_u64(base).unwrap(), 0);
        assert_eq!(mem.resident_pages(), 0, "reads must not materialize pages");
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut mem, base) = mapped();
        mem.write(base.offset(100), b"hello world").unwrap();
        assert_eq!(
            mem.read_bytes(base.offset(100), 11).unwrap(),
            b"hello world"
        );
    }

    #[test]
    fn cross_page_write() {
        let (mut mem, base) = mapped();
        let addr = base.offset(PAGE_SIZE as u64 - 3);
        mem.write(addr, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(mem.read_bytes(addr, 6).unwrap(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn unmapped_access_faults() {
        let (mut mem, base) = mapped();
        let err = mem.read_u8(Addr(0x50)).unwrap_err();
        assert!(matches!(err, MemFault::AccessViolation { .. }));
        // One byte past the end of the region.
        let end = base.offset(1 << 20);
        assert!(mem.write_u8(end, 1).is_err());
        // Access straddling the region end.
        assert!(mem.write(end.back(4), &[0; 8]).is_err());
    }

    #[test]
    fn map_overlap_rejected() {
        let (mut mem, base) = mapped();
        assert!(matches!(
            mem.map(base.offset(512), 16, "x"),
            Err(MemFault::MapOverlap { .. })
        ));
        // Adjacent is fine.
        assert!(mem.map(base.offset(1 << 20), 4096, "y").is_ok());
    }

    #[test]
    fn map_beyond_address_space_rejected() {
        let mut mem = SimMemory::new();
        assert!(matches!(
            mem.map(Addr(VA_LIMIT), 4096, "high"),
            Err(MemFault::BeyondAddressSpace { .. })
        ));
        assert!(matches!(
            mem.map(Addr(u64::MAX - 100), 4096, "wrap"),
            Err(MemFault::BeyondAddressSpace { .. })
        ));
        // The last page of the 39-bit space is fine.
        let id = mem
            .map(Addr(VA_LIMIT - PAGE_SIZE as u64), PAGE_SIZE as u64, "top")
            .unwrap();
        mem.write_u8(Addr(VA_LIMIT - 1), 0xee).unwrap();
        assert!(matches!(
            mem.grow_region(id, Addr(VA_LIMIT + 1)),
            Err(MemFault::BeyondAddressSpace { .. })
        ));
    }

    #[test]
    fn grow_region_sbrk() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 4096, "heap").unwrap();
        assert!(mem.write_u8(base.offset(5000), 1).is_err());
        mem.grow_region(id, base.offset(8192)).unwrap();
        assert!(mem.write_u8(base.offset(5000), 1).is_ok());
    }

    #[test]
    fn grow_collision_with_next_region() {
        let mut mem = SimMemory::new();
        let id = mem.map(Addr(0x1000), 4096, "heap").unwrap();
        mem.map(Addr(0x4000), 4096, "other").unwrap();
        assert!(mem.grow_region(id, Addr(0x4000)).is_ok());
        assert!(mem.grow_region(id, Addr(0x4001)).is_err());
    }

    #[test]
    fn shrink_drops_pages() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 1 << 16, "heap").unwrap();
        mem.fill(base, 1 << 16, 0xaa).unwrap();
        let before = mem.resident_pages();
        mem.grow_region(id, base.offset(4096)).unwrap();
        assert!(mem.resident_pages() < before);
        // Data in the retained page survives.
        assert_eq!(mem.read_u8(base).unwrap(), 0xaa);
    }

    #[test]
    fn shrink_page_aligned_end_reclaims_exactly() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 3 * PAGE_SIZE as u64, "heap").unwrap();
        mem.fill(base, 3 * PAGE_SIZE as u64, 0x11).unwrap();
        assert_eq!(mem.resident_pages(), 3);
        // Page-aligned new end: both vacated pages are exclusively owned.
        mem.grow_region(id, base.offset(PAGE_SIZE as u64)).unwrap();
        assert_eq!(mem.resident_pages(), 1);
        assert_eq!(
            mem.read_u8(base.offset(PAGE_SIZE as u64 - 1)).unwrap(),
            0x11
        );
    }

    #[test]
    fn shrink_keeps_page_straddling_the_new_end() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 0x2800 - 0x1000, "heap").unwrap(); // [0x1000, 0x2800)
        mem.fill(base, 0x1800, 0x22).unwrap();
        // Shrink to a mid-page end: page 1 straddles the retained prefix.
        mem.grow_region(id, Addr(0x1800)).unwrap();
        assert_eq!(mem.read_u8(Addr(0x17ff)).unwrap(), 0x22);
    }

    #[test]
    fn shrink_spares_straddling_neighbour_page() {
        let mut mem = SimMemory::new();
        // A = [0x1000, 0x2800), B = [0x2800, 0x3800): B starts mid-page 2.
        let a = mem.map(Addr(0x1000), 0x1800, "a").unwrap();
        mem.map(Addr(0x2800), 0x1000, "b").unwrap();
        mem.write(Addr(0x2800), b"neighbour").unwrap();
        // Shrinking A vacates [0x1800, 0x2800); page 2 belongs to B too.
        mem.grow_region(a, Addr(0x1800)).unwrap();
        assert_eq!(mem.read_bytes(Addr(0x2800), 9).unwrap(), b"neighbour");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 111).unwrap();
        let snap = mem.snapshot();
        mem.write_u64(base, 222).unwrap();
        mem.write_u64(base.offset(8192), 333).unwrap();
        mem.restore(&snap);
        assert_eq!(mem.read_u64(base).unwrap(), 111);
        assert_eq!(mem.read_u64(base.offset(8192)).unwrap(), 0);
    }

    #[test]
    fn restore_is_diff_aware() {
        let (mut mem, base) = mapped();
        let stride = PAGE_SIZE as u64;
        for i in 0..4 {
            mem.write_u64(base.offset(i * stride), i).unwrap();
        }
        let snap = mem.snapshot();
        // Diverge one page, drop another's worth of mapping state, and
        // materialize a page the snapshot never saw.
        mem.write_u64(base.offset(stride), 999).unwrap();
        mem.write_u64(base.offset(10 * stride), 7).unwrap();
        mem.restore(&snap);
        // Every restored page is the snapshot's own Arc, shared in place.
        let again = mem.snapshot();
        assert_eq!(again.page_count(), snap.page_count());
        assert_eq!(again.content_digest(), snap.content_digest());
        for i in 0..4 {
            assert_eq!(mem.read_u64(base.offset(i * stride)).unwrap(), i);
        }
        assert_eq!(mem.read_u64(base.offset(10 * stride)).unwrap(), 0);
        // A second restore with no intervening writes is a no-op swap.
        mem.restore(&snap);
        assert_eq!(mem.snapshot().content_digest(), snap.content_digest());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 1).unwrap();
        let snap = mem.snapshot();
        // Dirty the same page heavily after the snapshot.
        for i in 0..100 {
            mem.write_u64(base.offset(8 * i), i).unwrap();
        }
        mem.restore(&snap);
        assert_eq!(mem.read_u64(base).unwrap(), 1);
        assert_eq!(mem.read_u64(base.offset(8)).unwrap(), 0);
    }

    #[test]
    fn dirty_page_accounting() {
        let (mut mem, base) = mapped();
        assert_eq!(mem.take_dirty_pages(), 0);
        mem.write_u64(base, 1).unwrap();
        mem.write_u64(base.offset(16), 1).unwrap(); // same page
        mem.write_u64(base.offset(PAGE_SIZE as u64), 1).unwrap(); // new page
        assert_eq!(mem.dirty_page_count(), 2);
        assert_eq!(mem.take_dirty_pages(), 2);
        assert_eq!(mem.take_dirty_pages(), 0);
    }

    #[test]
    fn cached_page_redirties_after_take() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 1).unwrap();
        assert_eq!(mem.take_dirty_pages(), 1);
        // Same page stays hot in the TLB across the interval boundary;
        // the next write must count it dirty again.
        mem.write_u64(base.offset(8), 2).unwrap();
        assert_eq!(mem.dirty_page_count(), 1);
    }

    #[test]
    fn region_of_lookup() {
        let mut mem = SimMemory::new();
        mem.map(Addr(0x1000), 4096, "a").unwrap();
        mem.map(Addr(0x10000), 4096, "b").unwrap();
        assert_eq!(mem.region_of(Addr(0x1000)).unwrap().name, "a");
        assert_eq!(mem.region_of(Addr(0x10fff)).unwrap().name, "b");
        assert!(mem.region_of(Addr(0x2000)).is_none());
        assert!(mem.region_of(Addr(0x0)).is_none());
        // Cached hit after a miss still resolves correctly.
        assert_eq!(mem.region_of(Addr(0x1008)).unwrap().name, "a");
    }

    #[test]
    fn unmap_drops_region() {
        let mut mem = SimMemory::new();
        let id = mem.map(Addr(0x1000), 4096, "a").unwrap();
        mem.write_u8(Addr(0x1000), 9).unwrap();
        mem.unmap(id).unwrap();
        assert!(mem.read_u8(Addr(0x1000)).is_err());
        assert!(matches!(mem.unmap(id), Err(MemFault::NoSuchRegion)));
    }

    #[test]
    fn unmap_reclaims_all_pages() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 2 * PAGE_SIZE as u64, "a").unwrap();
        mem.write_u8(base, 1).unwrap();
        mem.write_u8(base.offset(PAGE_SIZE as u64), 2).unwrap();
        mem.unmap(id).unwrap();
        assert_eq!(mem.resident_pages(), 0, "all pages reclaimed");
        // Remapping the same range observes fresh zero pages.
        mem.map(base, 2 * PAGE_SIZE as u64, "a2").unwrap();
        assert_eq!(mem.read_u8(base).unwrap(), 0);
        assert_eq!(mem.read_u8(base.offset(PAGE_SIZE as u64)).unwrap(), 0);
    }

    #[test]
    fn unmap_spares_pages_straddled_by_neighbours() {
        let mut mem = SimMemory::new();
        // A = [0x1000, 0x1800), B = [0x1800, 0x2800): they share page 1,
        // and B alone owns the tail of page 2.
        let a = mem.map(Addr(0x1000), 0x800, "a").unwrap();
        let b = mem.map(Addr(0x1800), 0x1000, "b").unwrap();
        mem.write(Addr(0x1800), b"tail").unwrap();
        mem.write(Addr(0x2000), b"head").unwrap();
        mem.unmap(a).unwrap();
        assert_eq!(mem.read_bytes(Addr(0x1800), 4).unwrap(), b"tail");
        assert_eq!(mem.read_bytes(Addr(0x2000), 4).unwrap(), b"head");
        // Unmapping B afterwards reclaims both shared pages.
        mem.unmap(b).unwrap();
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn unmap_spares_trailing_page_of_following_region() {
        let mut mem = SimMemory::new();
        // A = [0x1000, 0x2800) ends mid-page 2; B = [0x2800, 0x3800)
        // starts on the same page. Unmapping A must not clobber B.
        let a = mem.map(Addr(0x1000), 0x1800, "a").unwrap();
        mem.map(Addr(0x2800), 0x1000, "b").unwrap();
        mem.write(Addr(0x2800), b"survivor").unwrap();
        mem.unmap(a).unwrap();
        assert_eq!(mem.read_bytes(Addr(0x2800), 8).unwrap(), b"survivor");
    }

    #[test]
    fn fill_large_range() {
        let (mut mem, base) = mapped();
        mem.fill(base.offset(10), 3 * PAGE_SIZE as u64, 0x5a)
            .unwrap();
        assert_eq!(mem.read_u8(base.offset(10)).unwrap(), 0x5a);
        assert_eq!(
            mem.read_u8(base.offset(10 + 3 * PAGE_SIZE as u64 - 1))
                .unwrap(),
            0x5a
        );
        assert_eq!(mem.read_u8(base.offset(9)).unwrap(), 0);
    }

    #[test]
    fn copy_moves_bytes() {
        let (mut mem, base) = mapped();
        mem.write(base, b"first-aid").unwrap();
        mem.copy(base.offset(4096), base, 9).unwrap();
        assert_eq!(mem.read_bytes(base.offset(4096), 9).unwrap(), b"first-aid");
    }

    #[test]
    fn copy_overlapping_forward_and_backward() {
        // Overlap distance smaller than the chunk size in both directions,
        // across a page boundary — the memmove cases.
        let len = PAGE_SIZE as u64 + 500;
        let pattern: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();

        let (mut mem, base) = mapped();
        mem.write(base.offset(300), &pattern).unwrap();
        mem.copy(base, base.offset(300), len).unwrap(); // dst < src
        assert_eq!(mem.read_bytes(base, len).unwrap(), pattern);

        let (mut mem, base) = mapped();
        mem.write(base, &pattern).unwrap();
        mem.copy(base.offset(300), base, len).unwrap(); // dst > src
        assert_eq!(mem.read_bytes(base.offset(300), len).unwrap(), pattern);
    }

    #[test]
    fn copy_to_unmapped_destination_is_atomic() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        mem.map(base, 2 * PAGE_SIZE as u64, "a").unwrap();
        mem.write(base, b"payload").unwrap();
        // Destination range runs off the end of the region: the copy must
        // fail up front without writing anything.
        let dst = base.offset(2 * PAGE_SIZE as u64 - 4);
        assert!(mem.copy(dst, base, 7).is_err());
        assert_eq!(mem.read_bytes(dst, 4).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn byte_counters_accumulate() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 5).unwrap();
        let _ = mem.read_u32(base).unwrap();
        assert_eq!(mem.bytes_written(), 8);
        assert_eq!(mem.bytes_read(), 4);
    }

    #[test]
    fn guarded_page_traps_reads_and_writes() {
        let mut mem = SimMemory::new();
        mem.map(Addr(0x1000), 4096, "slot").unwrap();
        mem.protect(Addr(0x1000), 4096, Perms::GUARD).unwrap();
        assert!(matches!(
            mem.read_u8(Addr(0x1000)),
            Err(MemFault::GuardTrap {
                kind: AccessKind::Read,
                ..
            })
        ));
        assert!(matches!(
            mem.write_u8(Addr(0x1fff), 1),
            Err(MemFault::GuardTrap {
                kind: AccessKind::Write,
                ..
            })
        ));
        // Disarming makes it an ordinary page again.
        mem.protect(Addr(0x1000), 4096, Perms::RW).unwrap();
        assert!(mem.write_u8(Addr(0x1000), 1).is_ok());
        assert_eq!(mem.read_u8(Addr(0x1000)).unwrap(), 1);
    }

    #[test]
    fn map_guarded_protects_every_page() {
        let mut mem = SimMemory::new();
        mem.map_guarded(Addr(0x1000), 2 * PAGE_SIZE as u64, "guard")
            .unwrap();
        assert!(matches!(
            mem.read_u8(Addr(0x1000)),
            Err(MemFault::GuardTrap { .. })
        ));
        assert!(matches!(
            mem.write_u8(Addr(0x1000 + PAGE_SIZE as u64), 1),
            Err(MemFault::GuardTrap { .. })
        ));
        assert_eq!(mem.resident_pages(), 0, "guarding allocates no frames");
    }

    #[test]
    fn poisoned_page_traps_and_contents_survive_unpoison() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        mem.map(base, 4096, "chunk").unwrap();
        mem.write_u64(base, 0xfeed).unwrap();
        mem.protect(base, 4096, Perms::POISONED).unwrap();
        assert!(matches!(
            mem.read_u64(base),
            Err(MemFault::GuardTrap {
                kind: AccessKind::Read,
                ..
            })
        ));
        mem.protect(base, 4096, Perms::RW).unwrap();
        assert_eq!(
            mem.read_u64(base).unwrap(),
            0xfeed,
            "poison round trip must not touch contents"
        );
    }

    #[test]
    fn guard_flip_allocates_nothing() {
        // The acceptance-criteria unit test: arming and disarming a guard
        // page is a pure permission flip — no region allocation, no frame
        // materialization, no change to the mapped extent.
        let (mut mem, base) = mapped();
        mem.write_u8(base, 1).unwrap();
        let regions = mem.regions().len();
        let resident = mem.resident_pages();
        let mapped = mem.mapped_bytes();
        for _ in 0..1000 {
            mem.protect(
                base.offset(PAGE_SIZE as u64),
                PAGE_SIZE as u64,
                Perms::GUARD,
            )
            .unwrap();
            mem.protect(base.offset(PAGE_SIZE as u64), PAGE_SIZE as u64, Perms::RW)
                .unwrap();
        }
        assert_eq!(mem.regions().len(), regions);
        assert_eq!(mem.resident_pages(), resident);
        assert_eq!(mem.mapped_bytes(), mapped);
    }

    #[test]
    fn protect_requires_single_region_containment() {
        let (mut mem, base) = mapped();
        assert!(matches!(
            mem.protect(Addr(0x50), 16, Perms::GUARD),
            Err(MemFault::NoSuchRegion)
        ));
        // Range running off the region end.
        assert!(mem
            .protect(base.offset((1 << 20) - 8), 16, Perms::GUARD)
            .is_err());
    }

    #[test]
    fn perms_of_reports_default_protect_and_cow() {
        let (mut mem, base) = mapped();
        assert_eq!(mem.perms_of(Addr(0x50)), None);
        assert_eq!(mem.perms_of(base), Some(Perms::RW));
        mem.protect(base, PAGE_SIZE as u64, Perms::GUARD).unwrap();
        assert_eq!(mem.perms_of(base), Some(Perms::GUARD));
        mem.protect(base, PAGE_SIZE as u64, Perms::RW).unwrap();
        // COW appears only while a written page is snapshot-shared.
        mem.write_u8(base, 1).unwrap();
        assert_eq!(mem.perms_of(base), Some(Perms::RW));
        let snap = mem.snapshot();
        assert_eq!(mem.perms_of(base), Some(Perms::RW | Perms::COW));
        mem.write_u8(base, 2).unwrap(); // replicates the frame
        assert_eq!(mem.perms_of(base), Some(Perms::RW));
        drop(snap);
        // Untouched pages are never COW (nothing to replicate).
        assert_eq!(mem.perms_of(base.offset(PAGE_SIZE as u64)), Some(Perms::RW));
    }

    #[test]
    fn cow_faults_count_replications() {
        let (mut mem, base) = mapped();
        mem.write_u8(base, 1).unwrap();
        assert_eq!(mem.cow_faults(), 0);
        let _snap = mem.snapshot();
        mem.write_u8(base, 2).unwrap();
        assert_eq!(mem.cow_faults(), 1, "store to a shared page replicates");
        mem.write_u8(base, 3).unwrap();
        assert_eq!(mem.cow_faults(), 1, "page is private again");
    }

    #[test]
    fn guard_survives_snapshot_restore() {
        let mut mem = SimMemory::new();
        mem.map(Addr(0x1000), 4096, "slot").unwrap();
        mem.write_u8(Addr(0x1000), 7).unwrap();
        let snap = mem.snapshot();
        mem.protect(Addr(0x1000), 4096, Perms::GUARD).unwrap();
        assert!(mem.read_u8(Addr(0x1000)).is_err());
        mem.restore(&snap);
        assert_eq!(mem.read_u8(Addr(0x1000)).unwrap(), 7);
        // And the converse: a guard armed before the snapshot is restored
        // with it.
        mem.protect(Addr(0x1000), 4096, Perms::GUARD).unwrap();
        let armed = mem.snapshot();
        mem.protect(Addr(0x1000), 4096, Perms::RW).unwrap();
        assert!(mem.read_u8(Addr(0x1000)).is_ok());
        mem.restore(&armed);
        assert!(mem.read_u8(Addr(0x1000)).is_err());
    }

    #[test]
    fn tlb_serves_hot_page_and_invalidates_on_protect() {
        let (mut mem, base) = mapped();
        mem.write_u8(base.offset(2 * PAGE_SIZE as u64), 1).unwrap();
        let hot = base.offset(2 * PAGE_SIZE as u64);
        let before = mem.tlb_stats();
        for _ in 0..100 {
            let _ = mem.read_u8(hot).unwrap();
        }
        let after = mem.tlb_stats();
        assert!(
            after.hits >= before.hits + 99,
            "hot single-page reads must hit the TLB ({before:?} -> {after:?})"
        );
        // Protect must invalidate the hot entry immediately.
        mem.protect(hot, PAGE_SIZE as u64, Perms::POISONED).unwrap();
        assert!(matches!(mem.read_u8(hot), Err(MemFault::GuardTrap { .. })));
    }

    #[test]
    fn tlb_never_caches_region_boundary_pages() {
        let mut mem = SimMemory::new();
        // Region ends mid-page: accesses near the end must keep faulting
        // byte-exactly even after many repetitions warm the cache.
        mem.map(Addr(0x1000), 0x800, "a").unwrap();
        for _ in 0..50 {
            assert!(mem.read_u8(Addr(0x17ff)).is_ok());
            assert!(mem.read_u8(Addr(0x1800)).is_err());
            assert!(mem.read(Addr(0x17fd), &mut [0; 8]).is_err());
        }
    }

    #[test]
    fn snapshot_sees_latest_write() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 77).unwrap();
        let snap = mem.snapshot();
        assert_eq!(snap.page_count(), 1);
        mem.write_u64(base, 88).unwrap();
        mem.restore(&snap);
        assert_eq!(mem.read_u64(base).unwrap(), 77);
    }
}
