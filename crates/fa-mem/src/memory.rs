//! The simulated address space.

use std::cell::Cell;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::addr::Addr;
use crate::fault::{AccessKind, MemFault};
use crate::page::{Page, SharedPage, PAGE_SIZE};
use crate::region::{Region, RegionId};
use crate::snapshot::MemSnapshot;

/// A sparse, paged, checkpointable address space.
///
/// `SimMemory` stands in for the native process memory First-Aid operates
/// on. It provides:
///
/// * region mapping with `sbrk`-style growth for the simulated heap,
/// * byte/word reads and writes with fault detection,
/// * O(mapped pages) copy-on-write snapshots for checkpointing,
/// * dirty-page accounting for the adaptive checkpoint controller.
///
/// All pages materialize lazily and zero-filled on first write, like
/// anonymous mappings handed out by the kernel. Reads of mapped but
/// untouched pages observe zeros.
///
/// # Hot-path caches
///
/// Accesses cluster heavily on one page and one region at a time, so two
/// one-entry caches keep the common case off the `BTreeMap` lookup and the
/// region binary search:
///
/// * the **write cache** holds the most recently written page *removed from
///   the page map* (preserving unique `Arc` ownership so repeated writes
///   don't pay `Arc::make_mut` bookkeeping against a map entry), flushed
///   back on any page switch, snapshot, unmap, grow, or restore;
/// * the **region cache** remembers the index of the last region that
///   satisfied a lookup, re-verified against the live bounds on every use.
pub struct SimMemory {
    /// Mapped regions, sorted by start address.
    regions: Vec<Region>,
    /// Materialized pages, keyed by page number. A page currently held in
    /// the write cache is *absent* from this map.
    pages: BTreeMap<u64, SharedPage>,
    /// Page numbers written since the last [`Self::take_dirty_pages`] call.
    dirty: BTreeSet<u64>,
    /// Next region id to hand out.
    next_region: u32,
    /// Total bytes read since creation (not rolled back by `restore`).
    bytes_read: u64,
    /// Total bytes written since creation (not rolled back by `restore`).
    bytes_written: u64,
    /// One-entry write cache: the last written page, held out of `pages`.
    wcache: Option<(u64, SharedPage)>,
    /// Whether the cached page is already in the dirty set (skips the
    /// per-write `BTreeSet` insert on repeated same-page writes).
    wcache_dirty: bool,
    /// One-entry region-lookup cache: index into `regions` of the last hit.
    rcache: Cell<Option<usize>>,
}

impl Clone for SimMemory {
    fn clone(&self) -> Self {
        SimMemory {
            regions: self.regions.clone(),
            pages: self.pages.clone(),
            dirty: self.dirty.clone(),
            next_region: self.next_region,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            // The cached page becomes shared between the copies; the next
            // write on either side replicates it via `Arc::make_mut`.
            wcache: self.wcache.clone(),
            wcache_dirty: self.wcache_dirty,
            rcache: self.rcache.clone(),
        }
    }
}

impl SimMemory {
    /// Creates an empty address space with no mapped regions.
    pub fn new() -> Self {
        SimMemory {
            regions: Vec::new(),
            pages: BTreeMap::new(),
            dirty: BTreeSet::new(),
            next_region: 0,
            bytes_read: 0,
            bytes_written: 0,
            wcache: None,
            wcache_dirty: false,
            rcache: Cell::new(None),
        }
    }

    // ------------------------------------------------------------------
    // Region management
    // ------------------------------------------------------------------

    /// Maps a new region `[start, start + len)`.
    ///
    /// Returns the region's id, or [`MemFault::MapOverlap`] if the range
    /// intersects an existing region.
    pub fn map(&mut self, start: Addr, len: u64, name: &str) -> Result<RegionId, MemFault> {
        if self.regions.iter().any(|r| r.overlaps(start, len)) {
            return Err(MemFault::MapOverlap { addr: start, len });
        }
        let id = RegionId(self.next_region);
        self.next_region += 1;
        let region = Region {
            id,
            start,
            end: start.offset(len),
            name: name.to_owned(),
            guarded: false,
        };
        let pos = self.regions.partition_point(|r| r.start < region.start);
        self.regions.insert(pos, region);
        self.rcache.set(None);
        Ok(id)
    }

    /// Maps a new trap-on-access guard region (see [`Region::guarded`]).
    pub fn map_guarded(&mut self, start: Addr, len: u64, name: &str) -> Result<RegionId, MemFault> {
        let id = self.map(start, len, name)?;
        self.set_region_guarded(id, true)?;
        Ok(id)
    }

    /// Arms or disarms trap-on-access for an existing region.
    pub fn set_region_guarded(&mut self, id: RegionId, guarded: bool) -> Result<(), MemFault> {
        let r = self
            .regions
            .iter_mut()
            .find(|r| r.id == id)
            .ok_or(MemFault::NoSuchRegion)?;
        r.guarded = guarded;
        Ok(())
    }

    /// Removes a region and drops the materialized pages it exclusively
    /// owned. Pages straddling a boundary shared with a neighbouring
    /// region survive (with the neighbour's bytes intact).
    pub fn unmap(&mut self, id: RegionId) -> Result<(), MemFault> {
        let pos = self
            .regions
            .iter()
            .position(|r| r.id == id)
            .ok_or(MemFault::NoSuchRegion)?;
        self.flush_wcache();
        self.rcache.set(None);
        let region = self.regions.remove(pos);
        self.reclaim_range(region.start, region.end);
        Ok(())
    }

    /// Grows (or shrinks) a region to end at `new_end`, the `sbrk` analog.
    ///
    /// Shrinking drops the pages of the vacated range that no region still
    /// overlaps. Growing fails with [`MemFault::MapOverlap`] if the new
    /// range would collide with the next region.
    pub fn grow_region(&mut self, id: RegionId, new_end: Addr) -> Result<(), MemFault> {
        let pos = self
            .regions
            .iter()
            .position(|r| r.id == id)
            .ok_or(MemFault::NoSuchRegion)?;
        if new_end < self.regions[pos].start {
            return Err(MemFault::NoSuchRegion);
        }
        if let Some(next) = self.regions.get(pos + 1) {
            if new_end.0 > next.start.0 {
                return Err(MemFault::MapOverlap {
                    addr: next.start,
                    len: new_end - next.start,
                });
            }
        }
        let old_end = self.regions[pos].end;
        self.regions[pos].end = new_end;
        self.rcache.set(None);
        if new_end < old_end {
            self.flush_wcache();
            self.reclaim_range(new_end, old_end);
        }
        Ok(())
    }

    /// Drops materialized pages of the dead range `[start, end)` that no
    /// mapped region still overlaps.
    ///
    /// Regions are disjoint, so only the two *boundary* pages of the range
    /// can be shared — with a neighbouring region or with the retained
    /// prefix of a shrunk region; interior pages are reclaimed
    /// unconditionally. Called after the region list has been updated.
    fn reclaim_range(&mut self, start: Addr, end: Addr) {
        if end <= start {
            return;
        }
        let first = start.page();
        let last = end.back(1).page();
        for page in first..=last {
            if page == first || page == last {
                let page_start = Addr(page * PAGE_SIZE as u64);
                if self
                    .regions
                    .iter()
                    .any(|r| r.overlaps(page_start, PAGE_SIZE as u64))
                {
                    continue;
                }
            }
            self.pages.remove(&page);
            self.dirty.remove(&page);
        }
    }

    /// Returns the region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&Region> {
        // Fast path: the last region that satisfied a lookup, re-verified
        // against its live bounds (indices shift on map/unmap, so those
        // invalidate the cache outright).
        if let Some(i) = self.rcache.get() {
            if let Some(r) = self.regions.get(i) {
                if r.start <= addr && addr < r.end {
                    return Some(r);
                }
            }
        }
        let pos = self.regions.partition_point(|r| r.start.0 <= addr.0);
        let i = pos.checked_sub(1)?;
        let r = &self.regions[i];
        if addr < r.end {
            self.rcache.set(Some(i));
            Some(r)
        } else {
            None
        }
    }

    /// Returns the region with the given id, if mapped.
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Returns all mapped regions in address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    fn check_mapped(&self, addr: Addr, len: u64, kind: AccessKind) -> Result<(), MemFault> {
        match self.region_of(addr) {
            Some(r) if r.contains_range(addr, len) => {
                if r.guarded {
                    Err(MemFault::GuardTrap { addr, kind, len })
                } else {
                    Ok(())
                }
            }
            _ => Err(MemFault::AccessViolation { addr, kind, len }),
        }
    }

    // ------------------------------------------------------------------
    // Write cache
    // ------------------------------------------------------------------

    /// Reinstates the cached page into the page map.
    fn flush_wcache(&mut self) {
        if let Some((pageno, page)) = self.wcache.take() {
            self.pages.insert(pageno, page);
        }
        self.wcache_dirty = false;
    }

    /// Makes `pageno` the cached write target, materializing it zero-filled
    /// if it has never been written.
    fn load_wcache(&mut self, pageno: u64) {
        if matches!(self.wcache, Some((cached, _)) if cached == pageno) {
            return;
        }
        self.flush_wcache();
        let page = self
            .pages
            .remove(&pageno)
            .unwrap_or_else(|| Arc::new(Page::zeroed()));
        self.wcache = Some((pageno, page));
        self.wcache_dirty = self.dirty.contains(&pageno);
    }

    // ------------------------------------------------------------------
    // Data access
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&mut self, addr: Addr, buf: &mut [u8]) -> Result<(), MemFault> {
        self.check_mapped(addr, buf.len() as u64, AccessKind::Read)?;
        self.bytes_read += buf.len() as u64;
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < buf.len() {
            let in_page = PAGE_SIZE - cursor.page_offset();
            let take = in_page.min(buf.len() - filled);
            let pageno = cursor.page();
            // Reads never (un)load the cache: they'd thrash it on
            // read-mostly phases and must not materialize pages.
            let page = match &self.wcache {
                Some((cached, page)) if *cached == pageno => Some(page.as_ref()),
                _ => self.pages.get(&pageno).map(Arc::as_ref),
            };
            match page {
                Some(page) => {
                    let off = cursor.page_offset();
                    buf[filled..filled + take].copy_from_slice(&page.bytes()[off..off + take]);
                }
                None => buf[filled..filled + take].fill(0),
            }
            filled += take;
            cursor = cursor.offset(take as u64);
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: Addr, buf: &[u8]) -> Result<(), MemFault> {
        self.check_mapped(addr, buf.len() as u64, AccessKind::Write)?;
        self.bytes_written += buf.len() as u64;
        let mut cursor = addr;
        let mut taken = 0usize;
        while taken < buf.len() {
            let in_page = PAGE_SIZE - cursor.page_offset();
            let take = in_page.min(buf.len() - taken);
            let pageno = cursor.page();
            self.load_wcache(pageno);
            let (_, page) = self.wcache.as_mut().expect("write cache just loaded");
            let off = cursor.page_offset();
            Arc::make_mut(page).bytes_mut()[off..off + take]
                .copy_from_slice(&buf[taken..taken + take]);
            if !self.wcache_dirty {
                self.wcache_dirty = true;
                self.dirty.insert(pageno);
            }
            taken += take;
            cursor = cursor.offset(take as u64);
        }
        Ok(())
    }

    /// Reads `len` bytes into a fresh vector.
    pub fn read_bytes(&mut self, addr: Addr, len: u64) -> Result<Vec<u8>, MemFault> {
        let mut buf = vec![0u8; len as usize];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, addr: Addr) -> Result<u64, MemFault> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, addr: Addr) -> Result<u32, MemFault> {
        let mut buf = [0u8; 4];
        self.read(addr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, value: u32) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: Addr) -> Result<u8, MemFault> {
        let mut buf = [0u8; 1];
        self.read(addr, &mut buf)?;
        Ok(buf[0])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> Result<(), MemFault> {
        self.write(addr, &[value])
    }

    /// Fills `[addr, addr + len)` with `byte`.
    pub fn fill(&mut self, addr: Addr, len: u64, byte: u8) -> Result<(), MemFault> {
        // Chunked to avoid a giant temporary for large fills.
        const CHUNK: usize = PAGE_SIZE;
        let tmp = [byte; CHUNK];
        let mut cursor = addr;
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(CHUNK as u64);
            self.write(cursor, &tmp[..take as usize])?;
            cursor = cursor.offset(take);
            remaining -= take;
        }
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` through a page-sized stack
    /// buffer — overlap-safe in both directions (`memmove`), without
    /// allocating a `len`-sized temporary.
    ///
    /// Both ranges are validated up front, so a fault leaves the
    /// destination unmodified.
    pub fn copy(&mut self, dst: Addr, src: Addr, len: u64) -> Result<(), MemFault> {
        self.check_mapped(src, len, AccessKind::Read)?;
        self.check_mapped(dst, len, AccessKind::Write)?;
        const CHUNK: u64 = PAGE_SIZE as u64;
        let mut tmp = [0u8; PAGE_SIZE];
        if dst.0 <= src.0 {
            // Ascending chunks: writes only clobber source bytes at or
            // below the chunk already buffered in `tmp`.
            let mut done = 0u64;
            while done < len {
                let take = (len - done).min(CHUNK) as usize;
                self.read(src.offset(done), &mut tmp[..take])?;
                self.write(dst.offset(done), &tmp[..take])?;
                done += take as u64;
            }
        } else {
            // Descending chunks: writes land above the source bytes still
            // to be read.
            let mut remaining = len;
            while remaining > 0 {
                let take = remaining.min(CHUNK) as usize;
                remaining -= take as u64;
                self.read(src.offset(remaining), &mut tmp[..take])?;
                self.write(dst.offset(remaining), &tmp[..take])?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Takes a copy-on-write snapshot of the entire address space.
    ///
    /// Cost is proportional to the number of materialized pages (an `Arc`
    /// clone per page), not their contents — the fork analog.
    pub fn snapshot(&self) -> MemSnapshot {
        let mut pages = self.pages.clone();
        if let Some((pageno, page)) = &self.wcache {
            pages.insert(*pageno, Arc::clone(page));
        }
        MemSnapshot {
            regions: self.regions.clone(),
            pages,
            next_region: self.next_region,
        }
    }

    /// Restores the address space from a snapshot, discarding all changes
    /// made after it was taken.
    ///
    /// The restore is diff-aware: pages still `Arc`-shared with the
    /// snapshot stay in place, so resetting a pooled trial context that
    /// last ran from a nearby checkpoint only touches the diverged pages
    /// (the slab-reuse hot path in fa-exec) instead of rebuilding the
    /// whole map. The resulting page map is indistinguishable from a
    /// wholesale copy of the snapshot's.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        // The cached write page sits outside `pages`; its post-snapshot
        // contents are being discarded, so drop it rather than flush it.
        self.wcache = None;
        self.wcache_dirty = false;
        self.regions.clone_from(&snap.regions);
        self.next_region = snap.next_region;
        self.pages
            .retain(|pageno, _| snap.pages.contains_key(pageno));
        for (pageno, page) in &snap.pages {
            match self.pages.entry(*pageno) {
                Entry::Occupied(mut live) => {
                    if !Arc::ptr_eq(live.get(), page) {
                        *live.get_mut() = Arc::clone(page);
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert(Arc::clone(page));
                }
            }
        }
        self.dirty.clear();
        self.rcache.set(None);
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Returns and clears the count of pages dirtied since the last call.
    ///
    /// This is the COW page rate input of the adaptive checkpoint-interval
    /// controller (paper §3, "Lightweight checkpoint/rollback").
    pub fn take_dirty_pages(&mut self) -> usize {
        let n = self.dirty.len();
        self.dirty.clear();
        self.wcache_dirty = false;
        n
    }

    /// Returns the count of pages dirtied since the last
    /// [`Self::take_dirty_pages`] without clearing it.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }

    /// Returns the number of materialized (resident) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len() + usize::from(self.wcache.is_some())
    }

    /// Returns the total size of all mapped regions in bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.iter().map(Region::len).sum()
    }

    /// Returns total bytes read through this address space since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Returns total bytes written through this address space since
    /// creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

impl Default for SimMemory {
    fn default() -> Self {
        SimMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped() -> (SimMemory, Addr) {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        (mem, base)
    }

    #[test]
    fn zero_filled_on_first_read() {
        let (mut mem, base) = mapped();
        assert_eq!(mem.read_u64(base).unwrap(), 0);
        assert_eq!(mem.resident_pages(), 0, "reads must not materialize pages");
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut mem, base) = mapped();
        mem.write(base.offset(100), b"hello world").unwrap();
        assert_eq!(
            mem.read_bytes(base.offset(100), 11).unwrap(),
            b"hello world"
        );
    }

    #[test]
    fn cross_page_write() {
        let (mut mem, base) = mapped();
        let addr = base.offset(PAGE_SIZE as u64 - 3);
        mem.write(addr, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(mem.read_bytes(addr, 6).unwrap(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn unmapped_access_faults() {
        let (mut mem, base) = mapped();
        let err = mem.read_u8(Addr(0x50)).unwrap_err();
        assert!(matches!(err, MemFault::AccessViolation { .. }));
        // One byte past the end of the region.
        let end = base.offset(1 << 20);
        assert!(mem.write_u8(end, 1).is_err());
        // Access straddling the region end.
        assert!(mem.write(end.back(4), &[0; 8]).is_err());
    }

    #[test]
    fn map_overlap_rejected() {
        let (mut mem, base) = mapped();
        assert!(matches!(
            mem.map(base.offset(512), 16, "x"),
            Err(MemFault::MapOverlap { .. })
        ));
        // Adjacent is fine.
        assert!(mem.map(base.offset(1 << 20), 4096, "y").is_ok());
    }

    #[test]
    fn grow_region_sbrk() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 4096, "heap").unwrap();
        assert!(mem.write_u8(base.offset(5000), 1).is_err());
        mem.grow_region(id, base.offset(8192)).unwrap();
        assert!(mem.write_u8(base.offset(5000), 1).is_ok());
    }

    #[test]
    fn grow_collision_with_next_region() {
        let mut mem = SimMemory::new();
        let id = mem.map(Addr(0x1000), 4096, "heap").unwrap();
        mem.map(Addr(0x4000), 4096, "other").unwrap();
        assert!(mem.grow_region(id, Addr(0x4000)).is_ok());
        assert!(mem.grow_region(id, Addr(0x4001)).is_err());
    }

    #[test]
    fn shrink_drops_pages() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 1 << 16, "heap").unwrap();
        mem.fill(base, 1 << 16, 0xaa).unwrap();
        let before = mem.resident_pages();
        mem.grow_region(id, base.offset(4096)).unwrap();
        assert!(mem.resident_pages() < before);
        // Data in the retained page survives.
        assert_eq!(mem.read_u8(base).unwrap(), 0xaa);
    }

    #[test]
    fn shrink_page_aligned_end_reclaims_exactly() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 3 * PAGE_SIZE as u64, "heap").unwrap();
        mem.fill(base, 3 * PAGE_SIZE as u64, 0x11).unwrap();
        assert_eq!(mem.resident_pages(), 3);
        // Page-aligned new end: both vacated pages are exclusively owned.
        mem.grow_region(id, base.offset(PAGE_SIZE as u64)).unwrap();
        assert_eq!(mem.resident_pages(), 1);
        assert_eq!(
            mem.read_u8(base.offset(PAGE_SIZE as u64 - 1)).unwrap(),
            0x11
        );
    }

    #[test]
    fn shrink_keeps_page_straddling_the_new_end() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 0x2800 - 0x1000, "heap").unwrap(); // [0x1000, 0x2800)
        mem.fill(base, 0x1800, 0x22).unwrap();
        // Shrink to a mid-page end: page 1 straddles the retained prefix.
        mem.grow_region(id, Addr(0x1800)).unwrap();
        assert_eq!(mem.read_u8(Addr(0x17ff)).unwrap(), 0x22);
    }

    #[test]
    fn shrink_spares_straddling_neighbour_page() {
        let mut mem = SimMemory::new();
        // A = [0x1000, 0x2800), B = [0x2800, 0x3800): B starts mid-page 2.
        let a = mem.map(Addr(0x1000), 0x1800, "a").unwrap();
        mem.map(Addr(0x2800), 0x1000, "b").unwrap();
        mem.write(Addr(0x2800), b"neighbour").unwrap();
        // Shrinking A vacates [0x1800, 0x2800); page 2 belongs to B too.
        mem.grow_region(a, Addr(0x1800)).unwrap();
        assert_eq!(mem.read_bytes(Addr(0x2800), 9).unwrap(), b"neighbour");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 111).unwrap();
        let snap = mem.snapshot();
        mem.write_u64(base, 222).unwrap();
        mem.write_u64(base.offset(8192), 333).unwrap();
        mem.restore(&snap);
        assert_eq!(mem.read_u64(base).unwrap(), 111);
        assert_eq!(mem.read_u64(base.offset(8192)).unwrap(), 0);
    }

    #[test]
    fn restore_is_diff_aware() {
        let (mut mem, base) = mapped();
        let stride = PAGE_SIZE as u64;
        for i in 0..4 {
            mem.write_u64(base.offset(i * stride), i).unwrap();
        }
        let snap = mem.snapshot();
        // Diverge one page, drop another's worth of mapping state, and
        // materialize a page the snapshot never saw.
        mem.write_u64(base.offset(stride), 999).unwrap();
        mem.write_u64(base.offset(10 * stride), 7).unwrap();
        mem.restore(&snap);
        // Every restored page is the snapshot's own Arc, shared in place.
        let again = mem.snapshot();
        assert_eq!(again.page_count(), snap.page_count());
        assert_eq!(again.content_digest(), snap.content_digest());
        for i in 0..4 {
            assert_eq!(mem.read_u64(base.offset(i * stride)).unwrap(), i);
        }
        assert_eq!(mem.read_u64(base.offset(10 * stride)).unwrap(), 0);
        // A second restore with no intervening writes is a no-op walk.
        mem.restore(&snap);
        assert_eq!(mem.snapshot().content_digest(), snap.content_digest());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 1).unwrap();
        let snap = mem.snapshot();
        // Dirty the same page heavily after the snapshot.
        for i in 0..100 {
            mem.write_u64(base.offset(8 * i), i).unwrap();
        }
        mem.restore(&snap);
        assert_eq!(mem.read_u64(base).unwrap(), 1);
        assert_eq!(mem.read_u64(base.offset(8)).unwrap(), 0);
    }

    #[test]
    fn dirty_page_accounting() {
        let (mut mem, base) = mapped();
        assert_eq!(mem.take_dirty_pages(), 0);
        mem.write_u64(base, 1).unwrap();
        mem.write_u64(base.offset(16), 1).unwrap(); // same page
        mem.write_u64(base.offset(PAGE_SIZE as u64), 1).unwrap(); // new page
        assert_eq!(mem.dirty_page_count(), 2);
        assert_eq!(mem.take_dirty_pages(), 2);
        assert_eq!(mem.take_dirty_pages(), 0);
    }

    #[test]
    fn cached_page_redirties_after_take() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 1).unwrap();
        assert_eq!(mem.take_dirty_pages(), 1);
        // Same page stays in the write cache across the interval boundary;
        // the next write must count it dirty again.
        mem.write_u64(base.offset(8), 2).unwrap();
        assert_eq!(mem.dirty_page_count(), 1);
    }

    #[test]
    fn region_of_lookup() {
        let mut mem = SimMemory::new();
        mem.map(Addr(0x1000), 4096, "a").unwrap();
        mem.map(Addr(0x10000), 4096, "b").unwrap();
        assert_eq!(mem.region_of(Addr(0x1000)).unwrap().name, "a");
        assert_eq!(mem.region_of(Addr(0x10fff)).unwrap().name, "b");
        assert!(mem.region_of(Addr(0x2000)).is_none());
        assert!(mem.region_of(Addr(0x0)).is_none());
        // Cached hit after a miss still resolves correctly.
        assert_eq!(mem.region_of(Addr(0x1008)).unwrap().name, "a");
    }

    #[test]
    fn unmap_drops_region() {
        let mut mem = SimMemory::new();
        let id = mem.map(Addr(0x1000), 4096, "a").unwrap();
        mem.write_u8(Addr(0x1000), 9).unwrap();
        mem.unmap(id).unwrap();
        assert!(mem.read_u8(Addr(0x1000)).is_err());
        assert!(matches!(mem.unmap(id), Err(MemFault::NoSuchRegion)));
    }

    #[test]
    fn unmap_reclaims_cached_and_trailing_pages() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        let id = mem.map(base, 2 * PAGE_SIZE as u64, "a").unwrap();
        // Leave the trailing page in the write cache when unmapping.
        mem.write_u8(base, 1).unwrap();
        mem.write_u8(base.offset(PAGE_SIZE as u64), 2).unwrap();
        mem.unmap(id).unwrap();
        assert_eq!(mem.resident_pages(), 0, "all pages reclaimed");
        // Remapping the same range observes fresh zero pages.
        mem.map(base, 2 * PAGE_SIZE as u64, "a2").unwrap();
        assert_eq!(mem.read_u8(base).unwrap(), 0);
        assert_eq!(mem.read_u8(base.offset(PAGE_SIZE as u64)).unwrap(), 0);
    }

    #[test]
    fn unmap_spares_pages_straddled_by_neighbours() {
        let mut mem = SimMemory::new();
        // A = [0x1000, 0x1800), B = [0x1800, 0x2800): they share page 1,
        // and B alone owns the tail of page 2.
        let a = mem.map(Addr(0x1000), 0x800, "a").unwrap();
        let b = mem.map(Addr(0x1800), 0x1000, "b").unwrap();
        mem.write(Addr(0x1800), b"tail").unwrap();
        mem.write(Addr(0x2000), b"head").unwrap();
        mem.unmap(a).unwrap();
        assert_eq!(mem.read_bytes(Addr(0x1800), 4).unwrap(), b"tail");
        assert_eq!(mem.read_bytes(Addr(0x2000), 4).unwrap(), b"head");
        // Unmapping B afterwards reclaims both shared pages.
        mem.unmap(b).unwrap();
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn unmap_spares_trailing_page_of_following_region() {
        let mut mem = SimMemory::new();
        // A = [0x1000, 0x2800) ends mid-page 2; B = [0x2800, 0x3800)
        // starts on the same page. Unmapping A must not clobber B.
        let a = mem.map(Addr(0x1000), 0x1800, "a").unwrap();
        mem.map(Addr(0x2800), 0x1000, "b").unwrap();
        mem.write(Addr(0x2800), b"survivor").unwrap();
        mem.unmap(a).unwrap();
        assert_eq!(mem.read_bytes(Addr(0x2800), 8).unwrap(), b"survivor");
    }

    #[test]
    fn fill_large_range() {
        let (mut mem, base) = mapped();
        mem.fill(base.offset(10), 3 * PAGE_SIZE as u64, 0x5a)
            .unwrap();
        assert_eq!(mem.read_u8(base.offset(10)).unwrap(), 0x5a);
        assert_eq!(
            mem.read_u8(base.offset(10 + 3 * PAGE_SIZE as u64 - 1))
                .unwrap(),
            0x5a
        );
        assert_eq!(mem.read_u8(base.offset(9)).unwrap(), 0);
    }

    #[test]
    fn copy_moves_bytes() {
        let (mut mem, base) = mapped();
        mem.write(base, b"first-aid").unwrap();
        mem.copy(base.offset(4096), base, 9).unwrap();
        assert_eq!(mem.read_bytes(base.offset(4096), 9).unwrap(), b"first-aid");
    }

    #[test]
    fn copy_overlapping_forward_and_backward() {
        // Overlap distance smaller than the chunk size in both directions,
        // across a page boundary — the memmove cases.
        let len = PAGE_SIZE as u64 + 500;
        let pattern: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();

        let (mut mem, base) = mapped();
        mem.write(base.offset(300), &pattern).unwrap();
        mem.copy(base, base.offset(300), len).unwrap(); // dst < src
        assert_eq!(mem.read_bytes(base, len).unwrap(), pattern);

        let (mut mem, base) = mapped();
        mem.write(base, &pattern).unwrap();
        mem.copy(base.offset(300), base, len).unwrap(); // dst > src
        assert_eq!(mem.read_bytes(base.offset(300), len).unwrap(), pattern);
    }

    #[test]
    fn copy_to_unmapped_destination_is_atomic() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000);
        mem.map(base, 2 * PAGE_SIZE as u64, "a").unwrap();
        mem.write(base, b"payload").unwrap();
        // Destination range runs off the end of the region: the copy must
        // fail up front without writing anything.
        let dst = base.offset(2 * PAGE_SIZE as u64 - 4);
        assert!(mem.copy(dst, base, 7).is_err());
        assert_eq!(mem.read_bytes(dst, 4).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn byte_counters_accumulate() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 5).unwrap();
        let _ = mem.read_u32(base).unwrap();
        assert_eq!(mem.bytes_written(), 8);
        assert_eq!(mem.bytes_read(), 4);
    }

    #[test]
    fn guarded_region_traps_reads_and_writes() {
        let mut mem = SimMemory::new();
        let id = mem.map_guarded(Addr(0x1000), 4096, "guard").unwrap();
        assert!(matches!(
            mem.read_u8(Addr(0x1000)),
            Err(MemFault::GuardTrap {
                kind: AccessKind::Read,
                ..
            })
        ));
        assert!(matches!(
            mem.write_u8(Addr(0x1fff), 1),
            Err(MemFault::GuardTrap {
                kind: AccessKind::Write,
                ..
            })
        ));
        // Disarming makes it an ordinary region again.
        mem.set_region_guarded(id, false).unwrap();
        assert!(mem.write_u8(Addr(0x1000), 1).is_ok());
        assert_eq!(mem.read_u8(Addr(0x1000)).unwrap(), 1);
    }

    #[test]
    fn guard_flag_survives_snapshot_restore() {
        let mut mem = SimMemory::new();
        let id = mem.map(Addr(0x1000), 4096, "slot").unwrap();
        mem.write_u8(Addr(0x1000), 7).unwrap();
        let snap = mem.snapshot();
        mem.set_region_guarded(id, true).unwrap();
        assert!(mem.read_u8(Addr(0x1000)).is_err());
        mem.restore(&snap);
        assert_eq!(mem.read_u8(Addr(0x1000)).unwrap(), 7);
    }

    #[test]
    fn snapshot_includes_write_cached_page() {
        let (mut mem, base) = mapped();
        mem.write_u64(base, 77).unwrap(); // page rides in the write cache
        let snap = mem.snapshot();
        assert_eq!(snap.page_count(), 1);
        mem.write_u64(base, 88).unwrap();
        mem.restore(&snap);
        assert_eq!(mem.read_u64(base).unwrap(), 77);
    }
}
