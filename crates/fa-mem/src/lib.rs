//! Simulated paged memory substrate for the First-Aid reproduction.
//!
//! The original First-Aid system (EuroSys 2009) operates on native process
//! memory: glibc's heap lives in real pages, checkpoints are taken with a
//! fork-like copy-on-write operation, and memory bugs manifest through the
//! physical heap layout. This crate reproduces that substrate
//! deterministically in user space:
//!
//! * [`SimMemory`] is a sparse, paged address space (4 KiB pages) with
//!   explicit region mapping and lazy zero-filled page materialization,
//! * reads and writes of unmapped addresses return [`MemFault`]s — the
//!   analog of a SIGSEGV caught by First-Aid's error monitor,
//! * [`SimMemory::snapshot`] produces an O(mapped pages) copy-on-write
//!   snapshot ([`MemSnapshot`]) by cloning `Arc`-shared pages; subsequent
//!   writes replicate pages on demand, exactly like fork-based COW
//!   checkpointing,
//! * dirty-page accounting ([`SimMemory::take_dirty_pages`]) drives the
//!   adaptive checkpoint-interval controller and the checkpoint space
//!   overhead experiments (paper Table 7).
//!
//! # Examples
//!
//! ```
//! use fa_mem::{Addr, SimMemory};
//!
//! let mut mem = SimMemory::new();
//! let heap = mem.map(Addr(0x1000_0000), 1 << 20, "heap").unwrap();
//! mem.write_u64(Addr(0x1000_0000), 0xdead_beef).unwrap();
//! let snap = mem.snapshot();
//! mem.write_u64(Addr(0x1000_0000), 7).unwrap();
//! mem.restore(&snap);
//! assert_eq!(mem.read_u64(Addr(0x1000_0000)).unwrap(), 0xdead_beef);
//! let _ = heap;
//! ```

pub mod addr;
pub mod fault;
pub mod memory;
pub mod page;
pub mod region;
pub mod snapshot;

pub use addr::Addr;
pub use fault::{AccessKind, MemFault};
pub use memory::SimMemory;
pub use page::{Page, PAGE_SIZE};
pub use region::{Region, RegionId};
pub use snapshot::MemSnapshot;
