//! Simulated paged memory substrate for the First-Aid reproduction.
//!
//! The original First-Aid system (EuroSys 2009) operates on native process
//! memory: glibc's heap lives in real pages, checkpoints are taken with a
//! fork-like copy-on-write operation, and guard pages / poisoned chunks
//! ride on MMU permission bits. This crate reproduces that substrate
//! deterministically in user space:
//!
//! * [`SimMemory`] is a sparse, paged address space (4 KiB pages, 39-bit
//!   VA) backed by a 3-level radix page table with explicit region mapping
//!   and lazy zero-filled page materialization,
//! * every page-table entry carries permission bits ([`Perms`]);
//!   [`SimMemory::protect`] flips them in O(1) per page — the `mprotect`
//!   analog behind guard pages and poison-on-free,
//! * reads and writes of unmapped addresses return [`MemFault`]s — the
//!   analog of a SIGSEGV caught by First-Aid's error monitor; accesses to
//!   [`Perms::GUARD`]/[`Perms::POISONED`] pages raise
//!   [`MemFault::GuardTrap`],
//! * a direct-mapped, 64-entry TLB caches per-page permissions in front
//!   of the walk ([`SimMemory::tlb_stats`] reports hit rates),
//! * [`SimMemory::snapshot`] produces an O(1) copy-on-write snapshot
//!   ([`MemSnapshot`]) by sharing the table root; subsequent writes
//!   path-copy and replicate frames on demand, exactly like fork-based
//!   COW checkpointing,
//! * dirty-page accounting ([`SimMemory::take_dirty_pages`]) drives the
//!   adaptive checkpoint-interval controller and the checkpoint space
//!   overhead experiments (paper Table 7),
//! * [`oracle::FlatMemory`] retains the pre-page-table flat-map
//!   implementation as a differential-testing oracle.
//!
//! # Examples
//!
//! ```
//! use fa_mem::{Addr, Perms, SimMemory};
//!
//! let mut mem = SimMemory::new();
//! let heap = mem.map(Addr(0x1000_0000), 1 << 20, "heap").unwrap();
//! mem.write_u64(Addr(0x1000_0000), 0xdead_beef).unwrap();
//! let snap = mem.snapshot();
//! mem.write_u64(Addr(0x1000_0000), 7).unwrap();
//! mem.restore(&snap);
//! assert_eq!(mem.read_u64(Addr(0x1000_0000)).unwrap(), 0xdead_beef);
//!
//! // Guard a page: pure permission flip, no allocation.
//! mem.protect(Addr(0x1000_1000), 4096, Perms::GUARD).unwrap();
//! assert!(mem.read_u8(Addr(0x1000_1000)).is_err());
//! let _ = heap;
//! ```

pub mod addr;
pub mod fault;
pub mod memory;
pub mod oracle;
pub mod page;
pub mod perm;
pub mod region;
pub mod snapshot;
pub(crate) mod table;
pub mod tlb;

pub use addr::Addr;
pub use fault::{AccessKind, MemFault};
pub use memory::SimMemory;
pub use oracle::{FlatMemory, FlatSnapshot};
pub use page::{Page, PAGE_SIZE};
pub use perm::Perms;
pub use region::{Region, RegionId};
pub use snapshot::MemSnapshot;
pub use table::{VA_BITS, VA_LIMIT};
pub use tlb::TlbStats;
