//! Virtual addresses in the simulated address space.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use crate::page::PAGE_SIZE;

/// A virtual address in the simulated address space.
///
/// Addresses are plain 64-bit values; arithmetic helpers are provided so
/// allocator and application code reads like pointer arithmetic without
/// ever touching real memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null address, never mapped.
    pub const NULL: Addr = Addr(0);

    /// Returns the page number containing this address.
    #[inline]
    pub fn page(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Returns the byte offset of this address within its page.
    #[inline]
    pub fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Returns `true` if this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address advanced by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 64-bit address space, which indicates a
    /// logic error in the caller rather than a simulated memory bug.
    #[inline]
    pub fn offset(self, n: u64) -> Addr {
        Addr(self.0.checked_add(n).expect("address overflow"))
    }

    /// Returns the address moved back by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics on underflow below address zero.
    #[inline]
    pub fn back(self, n: u64) -> Addr {
        Addr(self.0.checked_sub(n).expect("address underflow"))
    }

    /// Returns this address rounded up to the given power-of-two alignment.
    #[inline]
    pub fn align_up(self, align: u64) -> Addr {
        debug_assert!(align.is_power_of_two());
        Addr((self.0 + align - 1) & !(align - 1))
    }

    /// Returns `true` if the address is aligned to `align` bytes.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        self.offset(rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        *self = self.offset(rhs);
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;

    fn sub(self, rhs: Addr) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("address difference underflow")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let a = Addr(PAGE_SIZE as u64 * 3 + 17);
        assert_eq!(a.page(), 3);
        assert_eq!(a.page_offset(), 17);
    }

    #[test]
    fn alignment() {
        assert_eq!(Addr(15).align_up(16), Addr(16));
        assert_eq!(Addr(16).align_up(16), Addr(16));
        assert!(Addr(32).is_aligned(16));
        assert!(!Addr(33).is_aligned(16));
    }

    #[test]
    fn arithmetic() {
        let a = Addr(100);
        assert_eq!(a.offset(28), Addr(128));
        assert_eq!(a + 28, Addr(128));
        assert_eq!(Addr(128) - a, 28);
        assert_eq!(Addr(128).back(28), a);
    }

    #[test]
    fn null_checks() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(1).is_null());
    }

    #[test]
    #[should_panic(expected = "address underflow")]
    fn underflow_panics() {
        let _ = Addr(3).back(4);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Addr(0xab)), "0xab");
        assert_eq!(format!("{:?}", Addr(0xab)), "0xab");
    }
}
