//! Copy-on-write memory snapshots.

use std::collections::BTreeMap;

use crate::page::{SharedPage, PAGE_SIZE};
use crate::region::Region;

/// A copy-on-write snapshot of a [`crate::SimMemory`].
///
/// Holding a snapshot pins the `Arc`-shared pages it references; the live
/// address space replicates a page the first time it is written after the
/// snapshot was taken. This mirrors the fork-based in-memory checkpoints of
/// the paper's Flashback substrate: cheap to take, cost accrues with the
/// write working set.
#[derive(Clone)]
pub struct MemSnapshot {
    pub(crate) regions: Vec<Region>,
    pub(crate) pages: BTreeMap<u64, SharedPage>,
    pub(crate) next_region: u32,
}

impl MemSnapshot {
    /// Returns the number of pages referenced by this snapshot.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Returns the number of bytes of page data referenced by the snapshot.
    ///
    /// Note that pages may be shared with the live address space and other
    /// snapshots; [`Self::owned_bytes_vs`] reports the exclusively owned
    /// portion.
    pub fn referenced_bytes(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Returns the number of bytes in pages this snapshot holds that
    /// `other` does not share — i.e. the incremental space cost of keeping
    /// this snapshot alongside `other`.
    ///
    /// This is the per-checkpoint space figure of paper Table 7: with COW,
    /// a checkpoint's real cost is the set of pages that were dirtied in
    /// its interval.
    pub fn owned_bytes_vs(&self, other: &MemSnapshot) -> u64 {
        let mut owned = 0u64;
        for (pageno, page) in &self.pages {
            match other.pages.get(pageno) {
                Some(p) if std::sync::Arc::ptr_eq(p, page) => {}
                _ => owned += PAGE_SIZE as u64,
            }
        }
        owned
    }
}

#[cfg(test)]
mod tests {
    use crate::addr::Addr;
    use crate::memory::SimMemory;
    use crate::page::PAGE_SIZE;

    #[test]
    fn owned_bytes_counts_diverged_pages() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        for i in 0..4 {
            mem.write_u8(base.offset(i * PAGE_SIZE as u64), 1).unwrap();
        }
        let s1 = mem.snapshot();
        // Dirty two of the four pages.
        mem.write_u8(base, 2).unwrap();
        mem.write_u8(base.offset(PAGE_SIZE as u64), 2).unwrap();
        let s2 = mem.snapshot();
        assert_eq!(s2.owned_bytes_vs(&s1), 2 * PAGE_SIZE as u64);
        assert_eq!(s1.owned_bytes_vs(&s1), 0);
        assert_eq!(s1.page_count(), 4);
        assert_eq!(s1.referenced_bytes(), 4 * PAGE_SIZE as u64);
    }

    #[test]
    fn new_pages_count_as_owned() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        let s1 = mem.snapshot();
        mem.write_u8(base, 1).unwrap();
        let s2 = mem.snapshot();
        assert_eq!(s2.owned_bytes_vs(&s1), PAGE_SIZE as u64);
    }
}
