//! Copy-on-write memory snapshots.

use std::sync::Arc;

use crate::page::PAGE_SIZE;
use crate::region::Region;
use crate::table::{self, Root};

/// A copy-on-write snapshot of a [`crate::SimMemory`].
///
/// A snapshot is an `Arc`-shared reference to the page-table root at the
/// moment it was taken — O(1) to create, O(1) to restore. Holding it pins
/// the spine nodes and frames it references; the live address space
/// path-copies a spine and replicates a frame the first time a page is
/// written after the snapshot. This mirrors the fork-based in-memory
/// checkpoints of the paper's Flashback substrate: cheap to take, cost
/// accrues with the write working set.
#[derive(Clone)]
pub struct MemSnapshot {
    pub(crate) regions: Vec<Region>,
    pub(crate) root: Arc<Root>,
    pub(crate) resident: usize,
    pub(crate) next_region: u32,
}

impl MemSnapshot {
    /// Returns the number of pages (frames) referenced by this snapshot.
    pub fn page_count(&self) -> usize {
        self.resident
    }

    /// Returns the number of bytes of page data referenced by the snapshot.
    ///
    /// Note that pages may be shared with the live address space and other
    /// snapshots; [`Self::owned_bytes_vs`] reports the exclusively owned
    /// portion.
    pub fn referenced_bytes(&self) -> u64 {
        (self.resident * PAGE_SIZE) as u64
    }

    /// Returns the number of bytes in pages this snapshot holds that
    /// `other` does not share — i.e. the incremental space cost of keeping
    /// this snapshot alongside `other`.
    ///
    /// This is the per-checkpoint space figure of paper Table 7: with COW,
    /// a checkpoint's real cost is the set of pages that were dirtied in
    /// its interval. Identical subtrees are skipped by `Arc` identity, so
    /// the walk is proportional to the *diverged* spine, not the resident
    /// set.
    pub fn owned_bytes_vs(&self, other: &MemSnapshot) -> u64 {
        if Arc::ptr_eq(&self.root, &other.root) {
            return 0;
        }
        let mut owned = 0u64;
        for (i2, mine) in self.root.children.iter().enumerate() {
            let Some(mine) = mine else { continue };
            let theirs = other.root.children[i2].as_ref();
            if theirs.is_some_and(|t| Arc::ptr_eq(mine, t)) {
                continue;
            }
            for (i1, my_leaf) in mine.children.iter().enumerate() {
                let Some(my_leaf) = my_leaf else { continue };
                let their_leaf = theirs.and_then(|t| t.children[i1].as_ref());
                if their_leaf.is_some_and(|t| Arc::ptr_eq(my_leaf, t)) {
                    continue;
                }
                for (i0, entry) in my_leaf.entries.iter().enumerate() {
                    let Some(frame) = &entry.frame else { continue };
                    let shared = their_leaf.is_some_and(|t| {
                        t.entries[i0]
                            .frame
                            .as_ref()
                            .is_some_and(|f| Arc::ptr_eq(frame, f))
                    });
                    if !shared {
                        owned += PAGE_SIZE as u64;
                    }
                }
            }
        }
        owned
    }

    /// Returns a content-aware digest over all referenced pages.
    ///
    /// Folds each page's cached content hash (see
    /// [`crate::Page::content_hash`]) with its page number in ascending
    /// order, so both a flipped byte and a swapped pair of pages change
    /// the digest. The per-page hashes are cached on the shared frames
    /// themselves and only recomputed for pages written since the last
    /// digest of any snapshot sharing them — per checkpoint this is
    /// O(dirty pages), not O(resident pages).
    pub fn content_digest(&self) -> u64 {
        let mut h = 0xfa1d_c0de_5eed_0001u64;
        table::for_each_frame(&self.root, |pageno, frame| {
            h = mix64(h ^ pageno.rotate_left(32) ^ frame.content_hash());
        });
        h
    }

    /// Flips one byte of a referenced page *in this snapshot only* (the
    /// live address space and other snapshots are CoW-isolated from the
    /// damage). Returns `false` if the snapshot references no pages.
    ///
    /// This is a corruption hook for exercising checkpoint-rot detection;
    /// it deliberately bypasses dirty-tracking the way real bit rot would.
    pub fn rot_page(&mut self) -> bool {
        let Some(pageno) = table::first_frame(&self.root) else {
            return false;
        };
        let entry = table::walk_mut(&mut self.root, pageno);
        let frame = entry.frame.as_mut().expect("first_frame found a frame");
        Arc::make_mut(frame).bytes_mut()[PAGE_SIZE / 2] ^= 0x40;
        true
    }
}

/// SplitMix64 finalizer for the digest fold (shared with the flat-map
/// oracle so both digests use the identical fold).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use crate::addr::Addr;
    use crate::memory::SimMemory;
    use crate::page::PAGE_SIZE;

    #[test]
    fn owned_bytes_counts_diverged_pages() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        for i in 0..4 {
            mem.write_u8(base.offset(i * PAGE_SIZE as u64), 1).unwrap();
        }
        let s1 = mem.snapshot();
        // Dirty two of the four pages.
        mem.write_u8(base, 2).unwrap();
        mem.write_u8(base.offset(PAGE_SIZE as u64), 2).unwrap();
        let s2 = mem.snapshot();
        assert_eq!(s2.owned_bytes_vs(&s1), 2 * PAGE_SIZE as u64);
        assert_eq!(s1.owned_bytes_vs(&s1), 0);
        assert_eq!(s1.page_count(), 4);
        assert_eq!(s1.referenced_bytes(), 4 * PAGE_SIZE as u64);
    }

    #[test]
    fn new_pages_count_as_owned() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        let s1 = mem.snapshot();
        mem.write_u8(base, 1).unwrap();
        let s2 = mem.snapshot();
        assert_eq!(s2.owned_bytes_vs(&s1), PAGE_SIZE as u64);
    }

    #[test]
    fn owned_bytes_skips_shared_subtrees_across_tables() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        // A second region far away, in a different top-level subtree.
        let far = Addr(0x20_0000_0000);
        mem.map(far, 1 << 20, "far").unwrap();
        mem.write_u8(base, 1).unwrap();
        mem.write_u8(far, 1).unwrap();
        let s1 = mem.snapshot();
        mem.write_u8(base, 2).unwrap(); // diverge only the near subtree
        let s2 = mem.snapshot();
        assert_eq!(s2.owned_bytes_vs(&s1), PAGE_SIZE as u64);
    }

    #[test]
    fn content_digest_sees_in_page_changes() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        mem.write_u64(base, 1).unwrap();
        let s1 = mem.snapshot();
        let d1 = s1.content_digest();
        assert_eq!(s1.content_digest(), d1, "digest is stable");
        // Same shape (page count, referenced bytes), different contents.
        mem.write_u64(base, 2).unwrap();
        let s2 = mem.snapshot();
        assert_eq!(s2.page_count(), s1.page_count());
        assert_ne!(s2.content_digest(), d1);
        // Reverting the byte restores the digest.
        mem.write_u64(base, 1).unwrap();
        assert_eq!(mem.snapshot().content_digest(), d1);
    }

    #[test]
    fn rot_page_is_cow_isolated_and_changes_digest() {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        mem.write_u64(base, 7).unwrap();
        let clean = mem.snapshot();
        let d = clean.content_digest();
        let mut rotted = clean.clone();
        assert!(rotted.rot_page());
        assert_ne!(rotted.content_digest(), d, "rot must change the digest");
        assert_eq!(clean.content_digest(), d, "sibling snapshot unaffected");
        assert_eq!(mem.read_u64(base).unwrap(), 7, "live memory unaffected");
    }
}
