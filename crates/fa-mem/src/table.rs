//! Multi-level page table.
//!
//! A 3-level radix tree (rustos-style; see SNIPPETS.md snippets 2–3 for the
//! vendored excerpts this follows) translating 27-bit page numbers to
//! [`PageEntry`]s: frame reference + per-page [`Perms`]. Every node is
//! `Arc`-shared, so the whole table is a persistent data structure:
//!
//! * **snapshot** is an `Arc` clone of the root — O(1);
//! * **restore** swaps the root back — O(1);
//! * a store after a snapshot path-copies root → mid → leaf via
//!   `Arc::make_mut` and replicates only the written frame — the
//!   fork-based copy-on-write cost model of the paper's Flashback
//!   substrate, now paid per *dirty* page instead of per resident page.
//!
//! Layout: 9 bits per level (512-way fanout), 12-bit page offset, for a
//! 39-bit simulated virtual address space (512 GiB).

use std::sync::Arc;

use crate::page::SharedPage;
use crate::perm::Perms;

/// Bits of page-number index consumed per level.
pub(crate) const LEVEL_BITS: u32 = 9;
/// Children per node.
pub(crate) const FANOUT: usize = 1 << LEVEL_BITS;
/// Bits of a page number (3 levels × 9 bits).
pub(crate) const PAGE_INDEX_BITS: u32 = 3 * LEVEL_BITS;
/// Number of addressable pages.
pub(crate) const MAX_PAGES: u64 = 1 << PAGE_INDEX_BITS;
/// Bits of a simulated virtual address (page index + 12-bit offset).
pub const VA_BITS: u32 = PAGE_INDEX_BITS + 12;
/// One past the highest mappable address: 512 GiB.
pub const VA_LIMIT: u64 = 1 << VA_BITS;

/// Splits a page number into (root, mid, leaf) slot indices.
#[inline]
pub(crate) fn indices(pageno: u64) -> (usize, usize, usize) {
    debug_assert!(pageno < MAX_PAGES);
    (
        ((pageno >> (2 * LEVEL_BITS)) & (FANOUT as u64 - 1)) as usize,
        ((pageno >> LEVEL_BITS) & (FANOUT as u64 - 1)) as usize,
        (pageno & (FANOUT as u64 - 1)) as usize,
    )
}

/// One page-table entry: optional backing frame plus permission bits.
///
/// A *vacant* entry (no frame, [`Perms::RW`]) is indistinguishable from the
/// page having no entry at all — mapped pages default to read-write and
/// materialize a zero frame on first store. Entries are kept only while
/// they carry information: a frame, or non-default permissions.
#[derive(Clone)]
pub(crate) struct PageEntry {
    /// Backing frame; `None` until the first store (reads observe zeros).
    pub frame: Option<SharedPage>,
    /// Stored permission bits ([`Perms::COW`] is never stored).
    pub perms: Perms,
}

impl PageEntry {
    pub(crate) const fn vacant() -> Self {
        PageEntry {
            frame: None,
            perms: Perms::RW,
        }
    }

    /// True if the entry carries no information beyond the mapped default.
    #[inline]
    pub(crate) fn is_vacant(&self) -> bool {
        self.frame.is_none() && self.perms == Perms::RW
    }
}

/// Bottom-level node: 512 page entries.
pub(crate) struct Leaf {
    pub entries: Box<[PageEntry; FANOUT]>,
}

impl Leaf {
    pub(crate) fn new() -> Self {
        Leaf {
            entries: Box::new(std::array::from_fn(|_| PageEntry::vacant())),
        }
    }

    /// Number of entries with a backing frame.
    pub(crate) fn frames(&self) -> usize {
        self.entries.iter().filter(|e| e.frame.is_some()).count()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.iter().all(PageEntry::is_vacant)
    }
}

impl Clone for Leaf {
    fn clone(&self) -> Self {
        Leaf {
            entries: self.entries.clone(),
        }
    }
}

/// Middle-level node: 512 optional leaves.
pub(crate) struct Mid {
    pub children: Box<[Option<Arc<Leaf>>; FANOUT]>,
}

impl Mid {
    pub(crate) fn new() -> Self {
        Mid {
            children: Box::new(std::array::from_fn(|_| None)),
        }
    }

    pub(crate) fn frames(&self) -> usize {
        self.children
            .iter()
            .flatten()
            .map(|leaf| leaf.frames())
            .sum()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.children.iter().all(Option::is_none)
    }
}

impl Clone for Mid {
    fn clone(&self) -> Self {
        Mid {
            children: self.children.clone(),
        }
    }
}

/// Top-level node: 512 optional mid-level tables.
pub(crate) struct Root {
    pub children: Box<[Option<Arc<Mid>>; FANOUT]>,
}

impl Root {
    pub(crate) fn new() -> Self {
        Root {
            children: Box::new(std::array::from_fn(|_| None)),
        }
    }
}

impl Clone for Root {
    fn clone(&self) -> Self {
        Root {
            children: self.children.clone(),
        }
    }
}

/// Read-only walk to a non-vacant entry.
#[inline]
pub(crate) fn walk(root: &Root, pageno: u64) -> Option<&PageEntry> {
    let (i2, i1, i0) = indices(pageno);
    let mid = root.children[i2].as_deref()?;
    let leaf = mid.children[i1].as_deref()?;
    let entry = &leaf.entries[i0];
    if entry.is_vacant() {
        None
    } else {
        Some(entry)
    }
}

/// Mutable walk, path-copying shared nodes and materializing missing ones.
///
/// Returns the entry; the caller is responsible for keeping the vacancy
/// invariant (an entry left vacant is harmless but wastes the node).
pub(crate) fn walk_mut(root: &mut Arc<Root>, pageno: u64) -> &mut PageEntry {
    let (i2, i1, i0) = indices(pageno);
    let root = Arc::make_mut(root);
    let mid = root.children[i2].get_or_insert_with(|| Arc::new(Mid::new()));
    let mid = Arc::make_mut(mid);
    let leaf = mid.children[i1].get_or_insert_with(|| Arc::new(Leaf::new()));
    let leaf = Arc::make_mut(leaf);
    &mut leaf.entries[i0]
}

/// Returns `true` if any node on the path to `pageno`, or the entry's
/// frame itself, is `Arc`-shared — i.e. a store to the page would
/// replicate state (the dynamic [`Perms::COW`] condition).
///
/// The root's own sharing is passed in by the caller ([`crate::SimMemory`]
/// holds the root behind an `Arc` whose count reflects live snapshots).
pub(crate) fn path_shared(root: &Arc<Root>, pageno: u64) -> Option<bool> {
    let (i2, i1, i0) = indices(pageno);
    let mut shared = Arc::strong_count(root) > 1;
    let mid = root.children[i2].as_ref()?;
    shared |= Arc::strong_count(mid) > 1;
    let leaf = mid.children[i1].as_ref()?;
    shared |= Arc::strong_count(leaf) > 1;
    let frame = leaf.entries[i0].frame.as_ref()?;
    shared |= Arc::strong_count(frame) > 1;
    Some(shared)
}

/// Returns the lowest page number with a backing frame, if any.
pub(crate) fn first_frame(root: &Root) -> Option<u64> {
    for (i2, mid) in root.children.iter().enumerate() {
        let Some(mid) = mid else { continue };
        for (i1, leaf) in mid.children.iter().enumerate() {
            let Some(leaf) = leaf else { continue };
            for (i0, entry) in leaf.entries.iter().enumerate() {
                if entry.frame.is_some() {
                    return Some(
                        ((i2 as u64) << (2 * LEVEL_BITS)) | ((i1 as u64) << LEVEL_BITS) | i0 as u64,
                    );
                }
            }
        }
    }
    None
}

/// In-order traversal of all entries with a backing frame, ascending by
/// page number.
pub(crate) fn for_each_frame<F: FnMut(u64, &SharedPage)>(root: &Root, mut f: F) {
    for (i2, mid) in root.children.iter().enumerate() {
        let Some(mid) = mid else { continue };
        for (i1, leaf) in mid.children.iter().enumerate() {
            let Some(leaf) = leaf else { continue };
            for (i0, entry) in leaf.entries.iter().enumerate() {
                if let Some(frame) = &entry.frame {
                    let pageno =
                        ((i2 as u64) << (2 * LEVEL_BITS)) | ((i1 as u64) << LEVEL_BITS) | i0 as u64;
                    f(pageno, frame);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;

    #[test]
    fn index_split_roundtrip() {
        for pageno in [0u64, 1, 511, 512, 513, (1 << 18) + 5, MAX_PAGES - 1] {
            let (i2, i1, i0) = indices(pageno);
            let back = ((i2 as u64) << 18) | ((i1 as u64) << 9) | i0 as u64;
            assert_eq!(back, pageno);
        }
    }

    #[test]
    fn walk_mut_materializes_and_walk_reads_back() {
        let mut root = Arc::new(Root::new());
        assert!(walk(&root, 42).is_none());
        let e = walk_mut(&mut root, 42);
        e.frame = Some(Arc::new(Page::zeroed()));
        assert!(walk(&root, 42).is_some());
        assert!(walk(&root, 43).is_none(), "sibling entry stays vacant");
    }

    #[test]
    fn path_copy_isolates_snapshot() {
        let mut live = Arc::new(Root::new());
        let e = walk_mut(&mut live, 7);
        let mut page = Page::zeroed();
        page.bytes_mut()[0] = 1;
        e.frame = Some(Arc::new(page));
        let snap = Arc::clone(&live);
        // Store after the snapshot: path-copies and replicates the frame.
        let e = walk_mut(&mut live, 7);
        Arc::make_mut(e.frame.as_mut().unwrap()).bytes_mut()[0] = 2;
        assert_eq!(
            walk(&snap, 7).unwrap().frame.as_ref().unwrap().bytes()[0],
            1
        );
        assert_eq!(
            walk(&live, 7).unwrap().frame.as_ref().unwrap().bytes()[0],
            2
        );
    }

    #[test]
    fn path_shared_tracks_snapshots() {
        let mut live = Arc::new(Root::new());
        walk_mut(&mut live, 9).frame = Some(Arc::new(Page::zeroed()));
        assert_eq!(path_shared(&live, 9), Some(false));
        let snap = Arc::clone(&live);
        assert_eq!(path_shared(&live, 9), Some(true));
        // A store path-copies the spine; the page becomes private again.
        walk_mut(&mut live, 9).frame = Some(Arc::new(Page::zeroed()));
        assert_eq!(path_shared(&live, 9), Some(false));
        drop(snap);
        assert_eq!(path_shared(&live, 9), Some(false));
    }

    #[test]
    fn for_each_frame_is_ascending() {
        let mut root = Arc::new(Root::new());
        for pageno in [600u64, 3, 1 << 20] {
            walk_mut(&mut root, pageno).frame = Some(Arc::new(Page::zeroed()));
        }
        let mut seen = Vec::new();
        for_each_frame(&root, |pageno, _| seen.push(pageno));
        assert_eq!(seen, vec![3, 600, 1 << 20]);
    }
}
