//! Mapped regions of the simulated address space.

use crate::addr::Addr;

/// Identifier of a mapped region, stable across snapshots.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

/// A contiguous mapped range of the address space.
///
/// Regions model the process segments First-Aid cares about: the heap
/// (grown with `sbrk`-style [`crate::SimMemory::grow_region`] calls),
/// application stacks and statics. Accesses outside every region fault.
#[derive(Clone, Debug)]
pub struct Region {
    /// Stable identifier.
    pub id: RegionId,
    /// First mapped address.
    pub start: Addr,
    /// One past the last mapped address.
    pub end: Addr,
    /// Human-readable name used in diagnostics ("heap", "stack", ...).
    pub name: String,
}

impl Region {
    /// Returns the region length in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns `true` if the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Returns `true` if `[addr, addr + len)` lies entirely inside the
    /// region.
    #[inline]
    pub fn contains_range(&self, addr: Addr, len: u64) -> bool {
        addr >= self.start && addr.0.saturating_add(len) <= self.end.0
    }

    /// Returns `true` if the region overlaps `[addr, addr + len)`.
    #[inline]
    pub fn overlaps(&self, addr: Addr, len: u64) -> bool {
        addr.0 < self.end.0 && addr.0.saturating_add(len) > self.start.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(start: u64, end: u64) -> Region {
        Region {
            id: RegionId(0),
            start: Addr(start),
            end: Addr(end),
            name: "test".into(),
        }
    }

    #[test]
    fn containment() {
        let r = region(100, 200);
        assert!(r.contains_range(Addr(100), 100));
        assert!(r.contains_range(Addr(150), 10));
        assert!(!r.contains_range(Addr(150), 51));
        assert!(!r.contains_range(Addr(99), 1));
        assert!(!r.contains_range(Addr(200), 1));
    }

    #[test]
    fn overlap() {
        let r = region(100, 200);
        assert!(r.overlaps(Addr(50), 51));
        assert!(!r.overlaps(Addr(50), 50));
        assert!(r.overlaps(Addr(199), 10));
        assert!(!r.overlaps(Addr(200), 10));
    }

    #[test]
    fn length() {
        assert_eq!(region(100, 200).len(), 100);
        assert!(region(5, 5).is_empty());
    }
}
