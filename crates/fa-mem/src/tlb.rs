//! TLB-style translation/permission cache.
//!
//! A direct-mapped, 64-entry cache in front of the page-table walk
//! ([`crate::table`]), replacing the old one-entry write/region caches.
//! Each entry caches the *effective permissions* of one page whose frame
//! can be reached by a fresh walk — the cache never holds frame references,
//! so it cannot inflate `Arc` counts and break copy-on-write uniqueness.
//!
//! # Invalidation
//!
//! Entries are epoch-tagged rather than flushed: [`crate::SimMemory`] bumps
//! its table epoch on every operation that can change a page's effective
//! permissions or region containment (`map`, `unmap`, `grow_region`,
//! `protect`, `restore`), and a lookup whose stored epoch differs from the
//! live epoch is a miss. Snapshots do *not* bump the epoch — taking one
//! changes no permissions, and store-after-snapshot replication is handled
//! by the walk itself.
//!
//! Only pages lying entirely inside a single region are cached (see
//! `SimMemory::access_check`): accesses to a region's first and last page
//! always take the slow path, which preserves the byte-exact
//! "access must fit one region" fault semantics at region edges.

use crate::perm::Perms;

/// Number of cache entries; direct-mapped by `pageno % TLB_ENTRIES`.
pub(crate) const TLB_ENTRIES: usize = 64;

#[derive(Clone, Copy)]
struct TlbEntry {
    pageno: u64,
    epoch: u64,
    perms: Perms,
    /// Page already counted in the dirty set this interval — lets repeated
    /// stores to a hot page skip the `BTreeSet` insert.
    dirty: bool,
    valid: bool,
}

const INVALID: TlbEntry = TlbEntry {
    pageno: 0,
    epoch: 0,
    perms: Perms::NONE,
    dirty: false,
    valid: false,
};

/// Hit/miss counters of a [`Tlb`], for the `tlb_hit_rate` perf metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Access checks served from the cache.
    pub hits: u64,
    /// Access checks that took the page-table walk (including multi-page
    /// accesses, which always do).
    pub misses: u64,
}

impl TlbStats {
    /// Hit fraction in `[0, 1]`; `0` when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Direct-mapped translation/permission cache.
#[derive(Clone)]
pub(crate) struct Tlb {
    entries: [TlbEntry; TLB_ENTRIES],
    stats: TlbStats,
}

impl Tlb {
    pub(crate) fn new() -> Self {
        Tlb {
            entries: [INVALID; TLB_ENTRIES],
            stats: TlbStats::default(),
        }
    }

    #[inline]
    fn slot(pageno: u64) -> usize {
        (pageno % TLB_ENTRIES as u64) as usize
    }

    /// Returns the cached permissions of `pageno`, counting a hit or miss.
    #[inline]
    pub(crate) fn lookup(&mut self, pageno: u64, epoch: u64) -> Option<Perms> {
        let e = &self.entries[Self::slot(pageno)];
        if e.valid && e.epoch == epoch && e.pageno == pageno {
            self.stats.hits += 1;
            Some(e.perms)
        } else {
            None
        }
    }

    /// Counts one slow-path access check (single miss regardless of the
    /// number of pages walked).
    #[inline]
    pub(crate) fn count_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Installs (or refreshes) the entry for `pageno`.
    pub(crate) fn insert(&mut self, pageno: u64, perms: Perms, epoch: u64) {
        let slot = &mut self.entries[Self::slot(pageno)];
        // Preserve the dirty flag across a refresh of the same page in the
        // same epoch; anything else starts clean.
        let dirty = slot.valid && slot.epoch == epoch && slot.pageno == pageno && slot.dirty;
        *slot = TlbEntry {
            pageno,
            epoch,
            perms,
            dirty,
            valid: true,
        };
    }

    /// Marks `pageno` dirty if cached; returns `true` if it was *already*
    /// marked (the caller can then skip the dirty-set insert).
    #[inline]
    pub(crate) fn note_dirty(&mut self, pageno: u64, epoch: u64) -> bool {
        let e = &mut self.entries[Self::slot(pageno)];
        if e.valid && e.epoch == epoch && e.pageno == pageno {
            let was = e.dirty;
            e.dirty = true;
            was
        } else {
            false
        }
    }

    /// Clears all dirty flags (a dirty-interval boundary).
    pub(crate) fn clear_dirty(&mut self) {
        for e in &mut self.entries {
            e.dirty = false;
        }
    }

    pub(crate) fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_after_insert() {
        let mut tlb = Tlb::new();
        assert_eq!(tlb.lookup(5, 1), None);
        tlb.count_miss();
        tlb.insert(5, Perms::RW, 1);
        assert_eq!(tlb.lookup(5, 1), Some(Perms::RW));
        assert_eq!(tlb.stats(), TlbStats { hits: 1, misses: 1 });
    }

    #[test]
    fn epoch_bump_invalidates() {
        let mut tlb = Tlb::new();
        tlb.insert(5, Perms::RW, 1);
        assert_eq!(tlb.lookup(5, 2), None);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut tlb = Tlb::new();
        tlb.insert(3, Perms::RW, 1);
        tlb.insert(3 + TLB_ENTRIES as u64, Perms::GUARD, 1);
        assert_eq!(tlb.lookup(3, 1), None, "conflicting page evicted the entry");
        assert_eq!(tlb.lookup(3 + TLB_ENTRIES as u64, 1), Some(Perms::GUARD));
    }

    #[test]
    fn dirty_flag_tracks_interval() {
        let mut tlb = Tlb::new();
        tlb.insert(9, Perms::RW, 1);
        assert!(
            !tlb.note_dirty(9, 1),
            "first store must report not-yet-dirty"
        );
        assert!(tlb.note_dirty(9, 1), "second store sees the flag");
        tlb.clear_dirty();
        assert!(!tlb.note_dirty(9, 1));
        // Refresh in the same epoch preserves the flag.
        tlb.insert(9, Perms::RW, 1);
        assert!(tlb.note_dirty(9, 1));
    }

    #[test]
    fn hit_rate_math() {
        let s = TlbStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(TlbStats::default().hit_rate(), 0.0);
    }
}
