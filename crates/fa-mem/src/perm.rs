//! Per-page permission bits.
//!
//! Real First-Aid rides on MMU permission bits: guard pages are
//! `PROT_NONE` mappings, freed chunks are poisoned by revoking access, and
//! copy-on-write checkpoints mark pages read-only until the first store
//! replicates them. [`Perms`] is the simulated analog — a small bitset
//! attached to every materialized page-table entry (see
//! [`crate::SimMemory::protect`]).

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign};

/// Permission bits of one simulated page.
///
/// Pages of a mapped region default to [`Perms::RW`] without a page-table
/// entry being materialized; [`crate::SimMemory::protect`] overrides the
/// default for individual pages. [`Perms::GUARD`] and [`Perms::POISONED`]
/// both trap every access with [`crate::MemFault::GuardTrap`] — they differ
/// only in what the diagnosis layer infers from the trap (overflow into a
/// guard page vs. use-after-free of a poisoned one).
///
/// [`Perms::COW`] is *reported, never stored*: [`crate::SimMemory::perms_of`]
/// sets it dynamically for pages whose backing frame is shared with a
/// snapshot and would replicate on the next store. Passing `COW` to
/// `protect` is a no-op (the bit is masked off).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access at all (and no trap semantics — plain fault on access).
    pub const NONE: Perms = Perms(0);
    /// Loads allowed.
    pub const READ: Perms = Perms(1);
    /// Stores allowed.
    pub const WRITE: Perms = Perms(1 << 1);
    /// Trap-on-access guard page (sentry red zone).
    pub const GUARD: Perms = Perms(1 << 2);
    /// Trap-on-access poisoned page (freed memory).
    pub const POISONED: Perms = Perms(1 << 3);
    /// Backing frame is snapshot-shared; the next store replicates it.
    /// Dynamic — reported by [`crate::SimMemory::perms_of`], never stored.
    pub const COW: Perms = Perms(1 << 4);
    /// Default permissions of a mapped page: readable and writable.
    pub const RW: Perms = Perms(1 | (1 << 1));

    /// All bits that may be *stored* in a page-table entry.
    pub(crate) const STORABLE: Perms =
        Perms(Self::READ.0 | Self::WRITE.0 | Self::GUARD.0 | Self::POISONED.0);

    /// Returns `true` if every bit of `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if any bit of `other` is set in `self`.
    #[inline]
    pub fn intersects(self, other: Perms) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `self` with the bits of `other` removed.
    #[inline]
    pub fn without(self, other: Perms) -> Perms {
        Perms(self.0 & !other.0)
    }

    /// Returns `true` if an access traps ([`Perms::GUARD`] or
    /// [`Perms::POISONED`] is set).
    #[inline]
    pub fn traps(self) -> bool {
        self.intersects(Perms(Self::GUARD.0 | Self::POISONED.0))
    }

    /// Raw bit representation.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }
}

impl BitOr for Perms {
    type Output = Perms;

    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Perms {
    type Output = Perms;

    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (bit, label) in [
            (Perms::READ, "READ"),
            (Perms::WRITE, "WRITE"),
            (Perms::GUARD, "GUARD"),
            (Perms::POISONED, "POISONED"),
            (Perms::COW, "COW"),
        ] {
            if self.contains(bit) {
                if any {
                    f.write_str("|")?;
                }
                f.write_str(label)?;
                any = true;
            }
        }
        if !any {
            f.write_str("NONE")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_algebra() {
        let rw = Perms::READ | Perms::WRITE;
        assert_eq!(rw, Perms::RW);
        assert!(rw.contains(Perms::READ));
        assert!(!rw.contains(Perms::GUARD));
        assert!(rw.intersects(Perms::WRITE));
        assert_eq!(rw.without(Perms::WRITE), Perms::READ);
        assert!(!Perms::RW.traps());
        assert!(Perms::GUARD.traps());
        assert!((Perms::RW | Perms::POISONED).traps());
    }

    #[test]
    fn cow_is_not_storable() {
        assert!(!Perms::STORABLE.intersects(Perms::COW));
        assert!(Perms::STORABLE.contains(Perms::GUARD | Perms::POISONED));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Perms::NONE), "NONE");
        assert_eq!(format!("{:?}", Perms::RW), "READ|WRITE");
        assert_eq!(format!("{:?}", Perms::POISONED), "POISONED");
    }
}
