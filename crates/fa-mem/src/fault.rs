//! Memory access faults.
//!
//! A [`MemFault`] is the simulated analog of a hardware exception (SIGSEGV /
//! SIGBUS) delivered to the process. First-Aid's cheapest error monitor is
//! exactly this: catching access-violation exceptions raised from the kernel
//! (paper §3, "Error monitor(s)").

use core::fmt;

use crate::addr::Addr;

/// Whether a faulting access was a read or a write.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A memory access violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// An access touched an address outside every mapped region.
    AccessViolation {
        /// Faulting address.
        addr: Addr,
        /// Read or write.
        kind: AccessKind,
        /// Length of the attempted access in bytes.
        len: u64,
    },
    /// A mapping request overlapped an existing region.
    MapOverlap {
        /// Requested region start.
        addr: Addr,
        /// Requested region length.
        len: u64,
    },
    /// A region operation referred to an unknown region, or a
    /// [`crate::SimMemory::protect`] range not contained in one region.
    NoSuchRegion,
    /// A mapping request exceeded the simulated virtual address space
    /// (see [`crate::VA_LIMIT`]).
    BeyondAddressSpace {
        /// Requested region start.
        addr: Addr,
        /// Requested region length.
        len: u64,
    },
    /// An access touched a guarded (trap-on-access) region: a sentry
    /// guard page or a poisoned sentry slot.
    GuardTrap {
        /// Faulting address.
        addr: Addr,
        /// Read or write.
        kind: AccessKind,
        /// Length of the attempted access in bytes.
        len: u64,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::AccessViolation { addr, kind, len } => {
                write!(f, "access violation: {kind} of {len} byte(s) at {addr}")
            }
            MemFault::MapOverlap { addr, len } => {
                write!(f, "mapping overlap at {addr} (+{len})")
            }
            MemFault::NoSuchRegion => f.write_str("no such region"),
            MemFault::BeyondAddressSpace { addr, len } => {
                write!(f, "mapping beyond address space at {addr} (+{len})")
            }
            MemFault::GuardTrap { addr, kind, len } => {
                write!(f, "sentry guard trap: {kind} of {len} byte(s) at {addr}")
            }
        }
    }
}

impl std::error::Error for MemFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let f = MemFault::AccessViolation {
            addr: Addr(0x10),
            kind: AccessKind::Write,
            len: 8,
        };
        assert_eq!(
            f.to_string(),
            "access violation: write of 8 byte(s) at 0x10"
        );
        assert_eq!(
            MemFault::MapOverlap {
                addr: Addr(4),
                len: 2
            }
            .to_string(),
            "mapping overlap at 0x4 (+2)"
        );
    }
}
