//! Differential property tests: the paged address space (radix walk +
//! TLB) against the retained flat-map oracle.
//!
//! Every generated operation — map/unmap/grow, protect with guard and
//! poison bits, byte-granular reads/writes/fills/copies, snapshot and
//! restore — is applied to both [`SimMemory`] and [`FlatMemory`], and
//! every observable is compared after each step: the operation `Result`
//! (including the exact [`MemFault`]), returned data, mapped bytes,
//! resident and dirty page counts, per-page effective permissions
//! (with the dynamic COW bit), and snapshot page counts and content
//! digests. The vendored proptest shim seeds each case from the test
//! name, so failures replay deterministically.

use proptest::prelude::*;

use fa_mem::{Addr, FlatMemory, Perms, RegionId, SimMemory, PAGE_SIZE};

const PAGE: u64 = PAGE_SIZE as u64;
/// Fixed region slots, far enough apart that growth never collides.
const SLOTS: usize = 3;
const SLOT_SPACING: u64 = 0x40_0000; // 4 MiB
/// Largest region extent ops can produce (map ≤ 16 pages, grow ≤ 48).
const MAX_PAGES: u64 = 48;
/// Ops address up to this many pages past a slot base, so out-of-range
/// and cross-boundary accesses are generated too.
const SPAN_PAGES: u64 = 20;
/// Bound on live snapshots (oldest dropped first), so COW sharing both
/// appears and disappears during a run.
const SNAP_CAP: usize = 3;

fn base(slot: usize) -> u64 {
    0x4000_0000 + slot as u64 * SLOT_SPACING
}

#[derive(Clone, Debug)]
enum Op {
    Map {
        slot: usize,
        pages: u64,
        guarded: bool,
    },
    Unmap {
        slot: usize,
    },
    Grow {
        slot: usize,
        pages: u64,
    },
    Protect {
        slot: usize,
        first: u64,
        count: u64,
        perms: Perms,
    },
    Write {
        slot: usize,
        off: u64,
        len: u64,
        seed: u8,
    },
    Read {
        slot: usize,
        off: u64,
        len: u64,
    },
    Fill {
        slot: usize,
        off: u64,
        len: u64,
        byte: u8,
    },
    Copy {
        dslot: usize,
        doff: u64,
        sslot: usize,
        soff: u64,
        len: u64,
    },
    Snapshot,
    Restore,
    TakeDirty,
}

fn perm_strategy() -> impl Strategy<Value = Perms> {
    prop_oneof![
        3 => Just(Perms::RW),
        2 => Just(Perms::GUARD),
        2 => Just(Perms::POISONED),
        1 => Just(Perms::READ),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let slot = 0..SLOTS;
    let off = 0..SPAN_PAGES * PAGE;
    let len = 0..3 * PAGE + 17;
    prop_oneof![
        2 => (slot.clone(), 1..16u64, any::<bool>())
            .prop_map(|(slot, pages, guarded)| Op::Map { slot, pages, guarded }),
        1 => slot.clone().prop_map(|slot| Op::Unmap { slot }),
        2 => (slot.clone(), 0..MAX_PAGES).prop_map(|(slot, pages)| Op::Grow { slot, pages }),
        3 => (slot.clone(), 0..SPAN_PAGES, 1..4u64, perm_strategy())
            .prop_map(|(slot, first, count, perms)| Op::Protect { slot, first, count, perms }),
        4 => (slot.clone(), off.clone(), len.clone(), any::<u8>())
            .prop_map(|(slot, off, len, seed)| Op::Write { slot, off, len, seed }),
        3 => (slot.clone(), off.clone(), len.clone())
            .prop_map(|(slot, off, len)| Op::Read { slot, off, len }),
        2 => (slot.clone(), off.clone(), len.clone(), any::<u8>())
            .prop_map(|(slot, off, len, byte)| Op::Fill { slot, off, len, byte }),
        2 => (slot.clone(), off.clone(), slot, off, len)
            .prop_map(|(dslot, doff, sslot, soff, len)| Op::Copy { dslot, doff, sslot, soff, len }),
        1 => Just(Op::Snapshot),
        1 => Just(Op::Restore),
        1 => Just(Op::TakeDirty),
    ]
}

fn pattern(seed: u8, len: u64) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add(i as u8).wrapping_mul(167))
        .collect()
}

/// Region ids per slot for each implementation. Ids are assigned from
/// the same deterministic counter on both sides, so they should always
/// agree — the differential comparison on `map` results enforces it.
type Ids = [Option<(RegionId, RegionId)>; SLOTS];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paged_memory_matches_flat_oracle(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut paged = SimMemory::new();
        let mut flat = FlatMemory::new();
        let mut ids: Ids = [None; SLOTS];
        let mut snaps: Vec<(fa_mem::MemSnapshot, fa_mem::FlatSnapshot, Ids)> = Vec::new();

        for (step, op) in ops.iter().enumerate() {
            match op.clone() {
                Op::Map { slot, pages, guarded } => {
                    let (start, len) = (Addr(base(slot)), pages * PAGE);
                    let (rp, rf) = if guarded {
                        (paged.map_guarded(start, len, "slot"), flat.map_guarded(start, len, "slot"))
                    } else {
                        (paged.map(start, len, "slot"), flat.map(start, len, "slot"))
                    };
                    prop_assert_eq!(&rp, &rf, "map diverged at step {}: {:?}", step, op);
                    if let (Ok(p), Ok(f)) = (rp, rf) {
                        ids[slot] = Some((p, f));
                    }
                }
                Op::Unmap { slot } => {
                    // Stale ids (after a successful unmap or a restore)
                    // are used on purpose: both sides must agree the
                    // region is gone.
                    let Some((p, f)) = ids[slot] else { continue };
                    prop_assert_eq!(paged.unmap(p), flat.unmap(f),
                        "unmap diverged at step {}: {:?}", step, op);
                }
                Op::Grow { slot, pages } => {
                    let Some((p, f)) = ids[slot] else { continue };
                    let new_end = Addr(base(slot) + pages * PAGE);
                    prop_assert_eq!(paged.grow_region(p, new_end), flat.grow_region(f, new_end),
                        "grow diverged at step {}: {:?}", step, op);
                }
                Op::Protect { slot, first, count, perms } => {
                    let addr = Addr(base(slot) + first * PAGE);
                    prop_assert_eq!(
                        paged.protect(addr, count * PAGE, perms),
                        flat.protect(addr, count * PAGE, perms),
                        "protect diverged at step {}: {:?}", step, op
                    );
                }
                Op::Write { slot, off, len, seed } => {
                    let data = pattern(seed, len);
                    prop_assert_eq!(
                        paged.write(Addr(base(slot) + off), &data),
                        flat.write(Addr(base(slot) + off), &data),
                        "write diverged at step {}: {:?}", step, op
                    );
                }
                Op::Read { slot, off, len } => {
                    prop_assert_eq!(
                        paged.read_bytes(Addr(base(slot) + off), len),
                        flat.read_bytes(Addr(base(slot) + off), len),
                        "read diverged at step {}: {:?}", step, op
                    );
                }
                Op::Fill { slot, off, len, byte } => {
                    prop_assert_eq!(
                        paged.fill(Addr(base(slot) + off), len, byte),
                        flat.fill(Addr(base(slot) + off), len, byte),
                        "fill diverged at step {}: {:?}", step, op
                    );
                }
                Op::Copy { dslot, doff, sslot, soff, len } => {
                    let (dst, src) = (Addr(base(dslot) + doff), Addr(base(sslot) + soff));
                    prop_assert_eq!(paged.copy(dst, src, len), flat.copy(dst, src, len),
                        "copy diverged at step {}: {:?}", step, op);
                }
                Op::Snapshot => {
                    let sp = paged.snapshot();
                    let sf = flat.snapshot();
                    prop_assert_eq!(sp.page_count(), sf.page_count(),
                        "snapshot page_count diverged at step {}", step);
                    prop_assert_eq!(sp.content_digest(), sf.content_digest(),
                        "snapshot digest diverged at step {}", step);
                    if snaps.len() == SNAP_CAP {
                        snaps.remove(0);
                    }
                    snaps.push((sp, sf, ids));
                }
                Op::Restore => {
                    let Some((sp, sf, saved)) = snaps.pop() else { continue };
                    paged.restore(&sp);
                    flat.restore(&sf);
                    ids = saved;
                }
                Op::TakeDirty => {
                    prop_assert_eq!(paged.take_dirty_pages(), flat.take_dirty_pages(),
                        "take_dirty_pages diverged at step {}", step);
                }
            }

            // Observable invariants after every operation.
            prop_assert_eq!(paged.mapped_bytes(), flat.mapped_bytes(),
                "mapped_bytes diverged at step {}: {:?}", step, op);
            prop_assert_eq!(paged.resident_pages(), flat.resident_pages(),
                "resident_pages diverged at step {}: {:?}", step, op);
            prop_assert_eq!(paged.dirty_page_count(), flat.dirty_page_count(),
                "dirty_page_count diverged at step {}: {:?}", step, op);
            for s in 0..SLOTS {
                for k in 0..SPAN_PAGES {
                    let a = Addr(base(s) + k * PAGE);
                    prop_assert_eq!(paged.perms_of(a), flat.perms_of(a),
                        "perms_of({:?}) diverged at step {}: {:?}", a, step, op);
                }
            }
        }

        // Final full-content comparison over every mapped slot, plus one
        // last snapshot digest across the whole address space.
        for s in 0..SLOTS {
            let Some(extent) = paged.region_of(Addr(base(s))).map(|r| (r.start, r.len())) else {
                prop_assert!(flat.region_of(Addr(base(s))).is_none(),
                    "slot {} mapped only in the oracle", s);
                continue;
            };
            let (start, len) = extent;
            // A guard or poison page anywhere in the slot makes the bulk
            // read trap; both sides must agree either way.
            prop_assert_eq!(paged.read_bytes(start, len), flat.read_bytes(start, len),
                "final content diverged in slot {}", s);
        }
        prop_assert_eq!(
            paged.snapshot().content_digest(),
            flat.snapshot().content_digest(),
            "final digest diverged"
        );
    }

    /// TLB-focused slice of the differential: repeated single-page hits
    /// with interleaved protects (epoch invalidation) must never serve
    /// stale permissions.
    #[test]
    fn tlb_never_serves_stale_permissions(
        steps in prop::collection::vec((0..8u64, perm_strategy(), any::<u8>()), 1..60),
    ) {
        let mut paged = SimMemory::new();
        let mut flat = FlatMemory::new();
        let start = Addr(base(0));
        paged.map(start, 8 * PAGE, "tlb").unwrap();
        flat.map(start, 8 * PAGE, "tlb").unwrap();

        for (pageno, perms, byte) in steps {
            let addr = Addr(base(0) + pageno * PAGE + u64::from(byte) % PAGE);
            // Warm the TLB on both read and write paths...
            prop_assert_eq!(paged.read_u8(addr), flat.read_u8(addr));
            prop_assert_eq!(paged.write_u8(addr, byte), flat.write_u8(addr, byte));
            // ...then flip permissions and require agreement immediately.
            prop_assert_eq!(
                paged.protect(Addr(base(0) + pageno * PAGE), PAGE, perms),
                flat.protect(Addr(base(0) + pageno * PAGE), PAGE, perms)
            );
            prop_assert_eq!(paged.read_u8(addr), flat.read_u8(addr));
            prop_assert_eq!(paged.write_u8(addr, byte.wrapping_add(1)), flat.write_u8(addr, byte.wrapping_add(1)));
            prop_assert_eq!(paged.perms_of(addr), flat.perms_of(addr));
        }

        let stats = paged.tlb_stats();
        prop_assert!(stats.hits + stats.misses > 0, "TLB was never consulted");
    }
}
