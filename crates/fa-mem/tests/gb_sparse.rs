//! GB-scale sparse mappings: memory cost must track *touched* pages,
//! never mapped extent, and snapshot cost must track *dirtied* pages.
//!
//! The radix page table makes a multi-GB region free until written —
//! this is what lets fa-exec pool thousands of trial contexts with
//! full-size heaps. These tests map regions far larger than physical
//! memory could back (multiple GiB inside the 512 GiB virtual space)
//! and assert the proportionality properties directly.

use std::collections::BTreeSet;

use fa_mem::{Addr, SimMemory, PAGE_SIZE, VA_LIMIT};

const PAGE: u64 = PAGE_SIZE as u64;
const GIB: u64 = 1 << 30;

/// Deterministic scatter: a multiplicative-congruential walk over the
/// region's page space, so touched pages land in distinct radix leaves.
fn scattered_pages(region_pages: u64, count: usize) -> Vec<u64> {
    let mut pages = Vec::with_capacity(count);
    let mut x = 0x9e37_79b9u64;
    for _ in 0..count {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        pages.push(x % region_pages);
    }
    pages
}

#[test]
fn multi_gb_region_costs_only_touched_pages() {
    let mut mem = SimMemory::new();
    let base = Addr(0x10_0000_0000); // 64 GiB
    let len = 8 * GIB;
    assert!(
        base.0 + len <= VA_LIMIT,
        "test region must fit the address space"
    );
    mem.map(base, len, "sparse-heap").unwrap();

    assert_eq!(mem.mapped_bytes(), len);
    assert_eq!(
        mem.resident_pages(),
        0,
        "mapping alone materializes nothing"
    );

    let touched = scattered_pages(len / PAGE, 300);
    let distinct: BTreeSet<u64> = touched.iter().copied().collect();
    for &p in &touched {
        mem.write_u64(base.offset(p * PAGE + (p % 37) * 8), p)
            .unwrap();
    }

    assert_eq!(
        mem.resident_pages(),
        distinct.len(),
        "residency must equal distinct touched pages, not the 8 GiB extent"
    );
    assert_eq!(mem.dirty_page_count(), distinct.len());

    // Reads of untouched space stay free.
    assert_eq!(mem.read_u64(base.offset(len - PAGE)).unwrap_or(1), 0);
    assert_eq!(
        mem.resident_pages(),
        distinct.len(),
        "reads materialize nothing"
    );

    // Every touched page reads back its marker (last write wins per page).
    for &p in distinct.iter().take(50) {
        let got = mem.read_u64(base.offset(p * PAGE + (p % 37) * 8)).unwrap();
        assert_eq!(got, p);
    }
}

#[test]
fn snapshot_cost_scales_with_dirty_pages_not_extent() {
    let mut mem = SimMemory::new();
    let base = Addr(0x20_0000_0000);
    let len = 4 * GIB;
    mem.map(base, len, "sparse-heap").unwrap();

    // Working set: 200 scattered pages.
    let pages = scattered_pages(len / PAGE, 200);
    let distinct: BTreeSet<u64> = pages.iter().copied().collect();
    for &p in &pages {
        mem.write_u64(base.offset(p * PAGE), p).unwrap();
    }
    mem.take_dirty_pages();

    let s1 = mem.snapshot();
    assert_eq!(s1.page_count(), distinct.len());
    assert_eq!(s1.referenced_bytes(), distinct.len() as u64 * PAGE);

    // Dirty a small, known subset after the checkpoint.
    let redirty: Vec<u64> = distinct.iter().copied().take(17).collect();
    for &p in &redirty {
        mem.write_u64(base.offset(p * PAGE), p ^ 0xff).unwrap();
    }
    assert_eq!(mem.dirty_page_count(), redirty.len());

    // The next checkpoint's incremental space cost is exactly the
    // re-dirtied pages (paper Table 7: COW checkpoints cost the pages
    // written in the interval), not the resident set and certainly not
    // the 4 GiB extent.
    let s2 = mem.snapshot();
    assert_eq!(s2.page_count(), distinct.len(), "no new pages were created");
    assert_eq!(s2.owned_bytes_vs(&s1), redirty.len() as u64 * PAGE);
    assert_eq!(s1.owned_bytes_vs(&s2), redirty.len() as u64 * PAGE);
    assert_ne!(s1.content_digest(), s2.content_digest());

    // Rollback is O(1) and restores both content and accounting.
    mem.restore(&s1);
    assert_eq!(mem.resident_pages(), distinct.len());
    assert_eq!(mem.dirty_page_count(), 0);
    for &p in &redirty {
        assert_eq!(mem.read_u64(base.offset(p * PAGE)).unwrap(), p);
    }
    assert_eq!(mem.snapshot().content_digest(), s1.content_digest());
}

#[test]
fn unmap_reclaims_sparse_residency() {
    let mut mem = SimMemory::new();
    let keep = mem.map(Addr(0x40_0000_0000), GIB, "keep").unwrap();
    let drop_id = mem.map(Addr(0x48_0000_0000), GIB, "drop").unwrap();
    for i in 0..64u64 {
        mem.write_u64(Addr(0x40_0000_0000 + i * 367 * PAGE), i)
            .unwrap();
        mem.write_u64(Addr(0x48_0000_0000 + i * 367 * PAGE), i)
            .unwrap();
    }
    let before = mem.resident_pages();
    mem.unmap(drop_id).unwrap();
    assert_eq!(
        mem.resident_pages(),
        before / 2,
        "unmap frees the dropped frames"
    );
    mem.unmap(keep).unwrap();
    assert_eq!(mem.resident_pages(), 0);
    assert_eq!(mem.mapped_bytes(), 0);
}
