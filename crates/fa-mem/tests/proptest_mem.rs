//! Model-based property tests: `SimMemory` must behave exactly like a
//! flat byte map under arbitrary writes, fills, copies, snapshots, and
//! restores.

use std::collections::HashMap;

use proptest::prelude::*;

use fa_mem::{Addr, SimMemory};

const BASE: u64 = 0x4000_0000;
const LEN: u64 = 1 << 16;

#[derive(Clone, Debug)]
enum Op {
    Write { off: u16, data: Vec<u8> },
    Fill { off: u16, len: u16, byte: u8 },
    Copy { dst: u16, src: u16, len: u16 },
    Snapshot,
    Restore,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(off, data)| Op::Write { off, data }),
        2 => (any::<u16>(), any::<u16>(), any::<u8>())
            .prop_map(|(off, len, byte)| Op::Fill { off, len, byte }),
        2 => (any::<u16>(), any::<u16>(), 0u16..512)
            .prop_map(|(dst, src, len)| Op::Copy { dst, src, len }),
        1 => Just(Op::Snapshot),
        1 => Just(Op::Restore),
    ]
}

/// The reference model: a sparse byte map defaulting to zero.
#[derive(Clone, Default)]
struct Model {
    bytes: HashMap<u64, u8>,
}

impl Model {
    fn write(&mut self, off: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.bytes.insert(off + i as u64, b);
        }
    }

    fn read(&self, off: u64, len: u64) -> Vec<u8> {
        (off..off + len)
            .map(|o| self.bytes.get(&o).copied().unwrap_or(0))
            .collect()
    }
}

fn clamp(off: u16, len: u64) -> (u64, u64) {
    let off = u64::from(off) % LEN;
    let len = len.min(LEN - off);
    (off, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_matches_byte_map_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut mem = SimMemory::new();
        mem.map(Addr(BASE), LEN, "heap").unwrap();
        let mut model = Model::default();
        let mut snap: Option<(fa_mem::MemSnapshot, Model)> = None;

        for op in &ops {
            match op {
                Op::Write { off, data } => {
                    let (off, len) = clamp(*off, data.len() as u64);
                    let data = &data[..len as usize];
                    if data.is_empty() { continue; }
                    mem.write(Addr(BASE + off), data).unwrap();
                    model.write(off, data);
                }
                Op::Fill { off, len, byte } => {
                    let (off, len) = clamp(*off, u64::from(*len));
                    mem.fill(Addr(BASE + off), len, *byte).unwrap();
                    model.write(off, &vec![*byte; len as usize]);
                }
                Op::Copy { dst, src, len } => {
                    let (src, len) = clamp(*src, u64::from(*len));
                    let (dst, len2) = clamp(*dst, len);
                    let data = model.read(src, len2);
                    if data.is_empty() { continue; }
                    mem.copy(Addr(BASE + dst), Addr(BASE + src), len2).unwrap();
                    model.write(dst, &data);
                }
                Op::Snapshot => {
                    snap = Some((mem.snapshot(), model.clone()));
                }
                Op::Restore => {
                    if let Some((s, m)) = &snap {
                        mem.restore(s);
                        model = m.clone();
                    }
                }
            }
        }

        // Full-extent comparison in page-sized strides.
        for off in (0..LEN).step_by(4096) {
            let got = mem.read_bytes(Addr(BASE + off), 4096).unwrap();
            let want = model.read(off, 4096);
            prop_assert_eq!(got, want, "divergence in page at offset {}", off);
        }
    }

    #[test]
    fn snapshot_immune_to_later_writes(
        writes in prop::collection::vec((any::<u16>(), any::<u8>()), 1..100),
    ) {
        let mut mem = SimMemory::new();
        mem.map(Addr(BASE), LEN, "heap").unwrap();
        for (off, byte) in &writes {
            let (off, _) = clamp(*off, 1);
            mem.write_u8(Addr(BASE + off), *byte).unwrap();
        }
        let reference: Vec<u8> = mem.read_bytes(Addr(BASE), LEN).unwrap();
        let snap = mem.snapshot();
        for (off, byte) in &writes {
            let (off, _) = clamp(*off, 1);
            mem.write_u8(Addr(BASE + off), byte.wrapping_add(1)).unwrap();
        }
        mem.restore(&snap);
        prop_assert_eq!(mem.read_bytes(Addr(BASE), LEN).unwrap(), reference);
    }
}
