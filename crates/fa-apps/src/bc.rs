//! BC 1.06 — two buffer overflows in the interpreter's storage growth.
//!
//! The real bugs: `more_arrays` (and its sibling for variables) grows the
//! interpreter's storage arrays with an off-by-a-few element count, writing
//! initialization entries past the end of the new allocation. The same
//! growth routine is reached from two paths (array names and auto
//! variables) and the string store has a second overflow, so one exposing
//! run reveals **three** corrupted paddings — the "add padding(3)" of
//! paper Table 3.

use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use fa_allocext::BugType;

use crate::registry::{AppSpec, WorkloadSpec};

/// Request ops.
pub mod ops {
    /// Evaluate a simple expression (`a` operations).
    pub const EVAL: u32 = 0;
    /// Run a program that exhausts storage — the buggy growth paths.
    pub const GROW: u32 = 1;
}

/// The BC miniature.
#[derive(Clone, Default)]
pub struct Bc {
    arrays: Option<Addr>,
    variables: Option<Addr>,
    count: u64,
}

impl Bc {
    /// BUG 1: writes `count + 2` entries into an allocation sized for
    /// `count` (off-by-two elements = 16 bytes).
    fn more_storage(ctx: &mut ProcessCtx, count: u64) -> Result<Addr, Fault> {
        ctx.call("more_arrays", |ctx| {
            let new = ctx.malloc(count * 8)?;
            for i in 0..count + 2 {
                ctx.write_u64(new.offset(i * 8), 0)?;
            }
            Ok(new)
        })
    }

    /// BUG 2: the string store null-terminates one element past the end.
    fn store_string(ctx: &mut ProcessCtx, len: u64) -> Result<(), Fault> {
        ctx.call("store_string", |ctx| {
            let s = ctx.malloc(len)?;
            ctx.fill(s, len, b's')?;
            ctx.write_bytes(s.offset(len), &[0; 8])?; // off-by-one word
            ctx.free(s)?;
            Ok(())
        })
    }

    fn eval(ctx: &mut ProcessCtx, n: u64) -> Result<Response, Fault> {
        ctx.call("execute", |ctx| {
            let n = n.clamp(1, 64);
            let stack = ctx.call("init_stack", |ctx| ctx.malloc(n * 16))?;
            for i in 0..n {
                ctx.write_u64(stack.offset(i * 16), i * 3)?;
            }
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(ctx.read_u64(stack.offset(i * 16))?);
            }
            ctx.free(stack)?;
            Ok(Response::bytes(acc % 64 + 8))
        })
    }

    fn grow(&mut self, ctx: &mut ProcessCtx) -> Result<Response, Fault> {
        ctx.call("run_program", |ctx| {
            // Two distinct call paths into the buggy growth routine, plus
            // the string-store overflow: three overflowing call-sites.
            let arrays = ctx.call("lookup_array", |ctx| Bc::more_storage(ctx, 32))?;
            let vars = ctx.call("lookup_variable", |ctx| Bc::more_storage(ctx, 24))?;
            Bc::store_string(ctx, 40)?;
            // Normal bookkeeping continues; the trampled boundary tags are
            // discovered by the allocator shortly after.
            let scratch = ctx.malloc(64)?;
            ctx.fill(scratch, 64, 1)?;
            ctx.free(scratch)?;
            if let Some(old) = self.arrays.take() {
                ctx.free(old)?;
            }
            if let Some(old) = self.variables.take() {
                ctx.free(old)?;
            }
            self.arrays = Some(arrays);
            self.variables = Some(vars);
            self.count += 1;
            Ok(Response::bytes(16))
        })
    }
}

impl App for Bc {
    fn name(&self) -> &'static str {
        "bc"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        // Bytecode interpretation cost per statement.
        ctx.clock.advance(20_000);
        match input.op {
            ops::GROW => self.grow(ctx),
            _ => Bc::eval(ctx, input.a),
        }
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

/// Builds the BC workload: expression evaluations with storage growth at
/// the trigger indices.
pub fn workload(spec: &WorkloadSpec) -> Vec<Input> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    (0..spec.n)
        .map(|i| {
            if spec.triggers.contains(&i) {
                return InputBuilder::op(ops::GROW).gap_us(800).buggy().build();
            }
            InputBuilder::op(ops::EVAL)
                .a(rng.random_range(1u64..64))
                .gap_us(800)
                .build()
        })
        .collect()
}

/// Paper Table 2 row: BC 1.06, buffer overflow, 14K LOC, calculator.
pub fn spec() -> AppSpec {
    AppSpec {
        key: "bc",
        display: "BC",
        version: "1.06",
        loc: "14K",
        description: "calculator",
        bug_desc: "buffer overflow (x2)",
        expect_bug: BugType::BufferOverflow,
        expect_sites: 3,
        build: || Box::new(Bc::default()),
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::ExtAllocator;
    use fa_proc::Process;

    fn launch() -> Process {
        let mut ctx = ProcessCtx::new(1 << 28);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        Process::launch(Box::new(Bc::default()), ctx).unwrap()
    }

    #[test]
    fn expressions_are_clean() {
        let mut p = launch();
        for input in workload(&WorkloadSpec::new(150, &[])) {
            assert!(p.feed(input).is_ok());
        }
    }

    #[test]
    fn growth_overflows_crash() {
        let mut p = launch();
        let w = workload(&WorkloadSpec::new(60, &[30]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        assert_eq!(failed_at, Some(30));
        assert_eq!(p.failure.as_ref().unwrap().fault.class(), "heap-corruption");
    }
}
