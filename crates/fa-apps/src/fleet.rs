//! Fleet workload generation: one deterministic stream, many shards.
//!
//! A fleet supervisor dispatches a single input stream across N workers.
//! To keep fleet experiments reproducible regardless of thread timing,
//! the stream is built shard-first: each shard is an independent workload
//! from [`AppSpec::workload`] with its own derived seed and its own
//! trigger schedule, and the shards are interleaved round-robin into one
//! stream. Under round-robin dispatch with the same N, shard `s` is
//! exactly worker `s`'s traffic, so "which worker sees a trigger when"
//! is fully determined by the spec — not by scheduling.

use fa_proc::Input;

use crate::registry::{AppSpec, WorkloadSpec};

/// Derives a per-shard seed from the stream seed (splitmix64 step, so
/// neighboring shards get uncorrelated request mixes).
fn shard_seed(seed: u64, shard: usize) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + shard as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a fleet stream with an explicit trigger schedule per shard.
///
/// `shard_triggers[s]` lists the *within-shard* indices at which shard
/// `s`'s inputs trigger the bug; `per_shard` is each shard's length. The
/// result interleaves the shards round-robin:
/// `out[i] = shard[i % N][i / N]` — length `N * per_shard`.
pub fn sharded_stream(
    spec: &AppSpec,
    shard_triggers: &[Vec<usize>],
    per_shard: usize,
    seed: u64,
) -> Vec<Input> {
    let shards: Vec<Vec<Input>> = shard_triggers
        .iter()
        .enumerate()
        .map(|(s, triggers)| {
            (spec.workload)(&WorkloadSpec {
                n: per_shard,
                triggers: triggers.clone(),
                seed: shard_seed(seed, s),
            })
        })
        .collect();
    interleave(shards)
}

/// Builds the periodic fleet stream of the immunization experiment:
/// every shard triggers the bug every `period` inputs after a `warmup`,
/// shard `s` offset by `s * stagger` so triggers arrive spread out — the
/// first worker to hit one can immunize the rest before their turn.
///
/// Pick `stagger` larger than the bug's error-propagation distance (the
/// inputs between trigger and failure, ~250 for the Apache dangling
/// read), or later workers will have executed their own trigger before
/// the first failure is even caught.
pub fn periodic_stream(
    spec: &AppSpec,
    shards: usize,
    per_shard: usize,
    warmup: usize,
    period: usize,
    stagger: usize,
    seed: u64,
) -> Vec<Input> {
    let shard_triggers: Vec<Vec<usize>> = (0..shards)
        .map(|s| {
            (0..)
                .map(|k| warmup + s * stagger + k * period)
                .take_while(|&i| i < per_shard)
                .collect()
        })
        .collect();
    sharded_stream(spec, &shard_triggers, per_shard, seed)
}

fn interleave(shards: Vec<Vec<Input>>) -> Vec<Input> {
    let n = shards.len();
    let per_shard = shards.iter().map(Vec::len).max().unwrap_or(0);
    let mut iters: Vec<_> = shards.into_iter().map(Vec::into_iter).collect();
    let mut out = Vec::with_capacity(n * per_shard);
    for _ in 0..per_shard {
        for it in &mut iters {
            if let Some(input) = it.next() {
                out.push(input);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::spec_by_key;

    #[test]
    fn shards_interleave_round_robin() {
        let spec = spec_by_key("squid").unwrap();
        let stream = sharded_stream(&spec, &[vec![2], vec![]], 5, 1);
        assert_eq!(stream.len(), 10);
        // Shard 0's trigger at within-shard index 2 lands at stream
        // index 2 * 2 = 4; shard 1 carries none.
        let buggy: Vec<usize> = stream
            .iter()
            .enumerate()
            .filter(|(_, i)| i.buggy)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(buggy, vec![4]);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let spec = spec_by_key("apache").unwrap();
        let a = sharded_stream(&spec, &[vec![], vec![]], 20, 7);
        let b = sharded_stream(&spec, &[vec![], vec![]], 20, 7);
        let c = sharded_stream(&spec, &[vec![], vec![]], 20, 8);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different seed, different mix");
    }

    #[test]
    fn shards_get_distinct_mixes() {
        let spec = spec_by_key("squid").unwrap();
        let stream = sharded_stream(&spec, &[vec![], vec![]], 40, 3);
        let shard0: Vec<_> = stream.iter().step_by(2).collect();
        let shard1: Vec<_> = stream.iter().skip(1).step_by(2).collect();
        assert_ne!(shard0, shard1, "derived seeds differ");
    }

    #[test]
    fn periodic_stream_staggers_triggers() {
        let spec = spec_by_key("apache").unwrap();
        let stream = periodic_stream(&spec, 2, 100, 10, 40, 20, 5);
        assert_eq!(stream.len(), 200);
        let triggers = stream.iter().filter(|i| i.buggy).count();
        assert!(triggers >= 4, "both shards trigger repeatedly: {triggers}");
    }
}
