//! Pine 4.44 — the rfc822 address-quoting buffer overflow.
//!
//! The real bug (the `rfc822_cat` family): when building a quoted display
//! name for an address containing special characters, Pine's length
//! estimate misses the escaping expansion, overflowing the destination
//! buffer. The overflow corrupts the adjacent envelope structure's
//! boundary tag; the allocator aborts when the envelope is freed while the
//! message summary is being rendered.

use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use fa_allocext::BugType;

use crate::registry::{AppSpec, WorkloadSpec};

/// Request ops.
pub mod ops {
    /// Open and render message `a` of the mailbox.
    pub const READ: u32 = 0;
    /// Render the folder index (cheap).
    pub const INDEX: u32 = 1;
    /// Read a message whose From header is in `text` — the buggy path
    /// when the address needs quoting.
    pub const READ_FROM: u32 = 2;
}

/// The Pine miniature.
#[derive(Clone, Default)]
pub struct Pine;

impl Pine {
    /// Quoting doubles backslashes and quotes.
    fn quoted_len(addr: &str) -> u64 {
        addr.bytes()
            .map(|b| if b == b'"' || b == b'\\' { 2 } else { 1 })
            .sum()
    }

    fn render_message(ctx: &mut ProcessCtx, size: u64) -> Result<Response, Fault> {
        ctx.call("mm_fetchtext", |ctx| {
            let size = size.clamp(512, 32_768);
            let body = ctx.call("fs_get_body", |ctx| ctx.malloc(size))?;
            ctx.fill(body, size, b'.')?;
            let _ = ctx.read_bytes(body, 128.min(size))?;
            ctx.free(body)?;
            Ok(Response::bytes(size))
        })
    }

    fn render_from(ctx: &mut ProcessCtx, from: &str) -> Result<Response, Fault> {
        ctx.call("mm_format_from", |ctx| {
            // BUG: the estimate forgets that quoting expands characters.
            let estimate = from.len() as u64 + 4;
            let namebuf = ctx.call("rfc822_cat_alloc", |ctx| ctx.malloc(estimate))?;
            let envelope = ctx.call("mail_newenvelope", |ctx| ctx.malloc(192))?;
            let actual = Pine::quoted_len(from) + 2; // surrounding quotes
            ctx.fill(namebuf, actual, b'q')?;
            ctx.fill(envelope, 192, 0x15)?;
            ctx.free(envelope)?;
            ctx.free(namebuf)?;
            Ok(Response::bytes(1024))
        })
    }
}

impl App for Pine {
    fn name(&self) -> &'static str {
        "pine"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        // Screen rendering + IMAP protocol cost.
        ctx.clock.advance(60_000);
        match input.op {
            ops::INDEX => ctx.call("mm_index", |ctx| {
                let line = ctx.malloc(256)?;
                ctx.fill(line, 256, b'-')?;
                ctx.free(line)?;
                Ok(Response::bytes(256))
            }),
            ops::READ_FROM => Pine::render_from(ctx, &input.text),
            _ => Pine::render_message(ctx, input.a),
        }
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

/// Builds the Pine workload: message reads and index renders, with quoted
/// addresses at the trigger indices.
pub fn workload(spec: &WorkloadSpec) -> Vec<Input> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    (0..spec.n)
        .map(|i| {
            if spec.triggers.contains(&i) {
                let from = format!("\"{}\" <evil@x.org>", "\\\"".repeat(16));
                return InputBuilder::op(ops::READ_FROM)
                    .text(from)
                    .gap_us(3_000)
                    .buggy()
                    .build();
            }
            if rng.random_ratio(1, 3) {
                InputBuilder::op(ops::INDEX).gap_us(3_000).build()
            } else {
                InputBuilder::op(ops::READ)
                    .a(rng.random_range(512u64..16_384))
                    .gap_us(3_000)
                    .build()
            }
        })
        .collect()
}

/// Paper Table 2 row: Pine 4.44, buffer overflow, 330K LOC, email client.
pub fn spec() -> AppSpec {
    AppSpec {
        key: "pine",
        display: "Pine",
        version: "4.44",
        loc: "330K",
        description: "email client",
        bug_desc: "buffer overflow",
        expect_bug: BugType::BufferOverflow,
        expect_sites: 1,
        build: || Box::new(Pine),
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::ExtAllocator;
    use fa_proc::Process;

    fn launch() -> Process {
        let mut ctx = ProcessCtx::new(1 << 28);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        Process::launch(Box::new(Pine), ctx).unwrap()
    }

    #[test]
    fn plain_addresses_are_clean() {
        let mut p = launch();
        for input in workload(&WorkloadSpec::new(150, &[])) {
            assert!(p.feed(input).is_ok());
        }
        // A benign quoted-from render fits the estimate.
        let r = p.feed(InputBuilder::op(ops::READ_FROM).text("a@b.c").build());
        assert!(r.is_ok());
    }

    #[test]
    fn quoted_address_overflows() {
        let mut p = launch();
        let w = workload(&WorkloadSpec::new(80, &[40]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        assert_eq!(failed_at, Some(40));
    }

    #[test]
    fn quoting_math() {
        assert_eq!(Pine::quoted_len("plain"), 5);
        assert_eq!(Pine::quoted_len("\"\\"), 4);
    }
}
