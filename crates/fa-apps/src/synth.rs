//! Synthetic benchmark profiles: SPEC INT2000 and the four
//! allocation-intensive programs (paper §7.5–7.6).
//!
//! The paper's overhead experiments depend only on aggregate memory
//! behaviour: heap size, live object count and size distribution,
//! allocation churn, and the dirty working set per unit time (which drives
//! COW checkpoint cost). Each [`SynthProfile`] encodes those parameters
//! for one benchmark, tuned so the reproduced Tables 6–7 and Fig. 6 land
//! in the paper's ranges:
//!
//! * big-heap, low-churn programs (gzip, bzip2, mcf) → checkpointing
//!   dominates overhead; tiny allocator-extension cost;
//! * many-small-object programs (cfrac, p2c, twolf) → the 16-byte/object
//!   extension metadata is a large *fraction* of a small heap;
//! * high-churn programs (cfrac, BC) → allocator-extension time overhead.

use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Which suite a profile belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// SPEC INT2000.
    Spec,
    /// The allocation-intensive set of Berger et al. (Hoard).
    AllocIntensive,
}

/// Aggregate memory-behaviour parameters of one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SynthProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// Megabytes of large base blocks allocated at startup (the bulk of
    /// the heap for the big SPEC programs).
    pub base_mb: u64,
    /// Steady-state live small-object count.
    pub live_objects: usize,
    /// Small-object size range (bytes).
    pub obj_size: (u64, u64),
    /// Frees+allocs per input (allocation churn).
    pub churn: usize,
    /// Bytes of fresh working set dirtied per input: the touch cursor
    /// advances by exactly this much, so the COW dirty-page rate is
    /// `advance_bytes / 4096` pages per input (the Table 7 driver).
    pub advance_bytes: u64,
    /// Extra virtual compute per input, ns.
    pub compute_ns: u64,
    /// Arrival gap per input, µs (0 for batch/desktop programs, which
    /// run flat out).
    pub gap_us: u64,
    /// Size of the program's write working set in MB: the touch cursor
    /// wraps within this window, bounding the pages dirtied per
    /// checkpoint interval (what lets the adaptive controller amortize
    /// COW cost by stretching intervals, as in the paper's Table 7).
    pub window_mb: u64,
}

/// Bytes per large base block.
const BASE_BLOCK: u64 = 1 << 20;

/// Returns the SPEC INT2000 profiles (paper Fig. 6, Tables 6–7 rows).
///
/// `advance_bytes` values are derived from the paper's Table 7
/// MB/checkpoint figures at ~55 µs of busy work per input and 200 ms
/// checkpoint intervals.
pub fn spec_profiles() -> Vec<SynthProfile> {
    use Suite::Spec;
    vec![
        SynthProfile {
            name: "164.gzip",
            suite: Spec,
            base_mb: 178,
            live_objects: 800,
            obj_size: (256, 4096),
            churn: 2,
            advance_bytes: 1_324,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 5,
        },
        SynthProfile {
            name: "175.vpr",
            suite: Spec,
            base_mb: 19,
            live_objects: 15_000,
            obj_size: (32, 128),
            churn: 4,
            advance_bytes: 394,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 2,
        },
        SynthProfile {
            name: "176.gcc",
            suite: Spec,
            base_mb: 80,
            live_objects: 30_000,
            obj_size: (64, 512),
            churn: 5,
            advance_bytes: 1_400,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 5,
        },
        SynthProfile {
            name: "181.mcf",
            suite: Spec,
            base_mb: 94,
            live_objects: 500,
            obj_size: (1024, 8192),
            churn: 1,
            advance_bytes: 2_724,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 10,
        },
        SynthProfile {
            name: "186.crafty",
            suite: Spec,
            base_mb: 1,
            live_objects: 1_200,
            obj_size: (64, 256),
            churn: 1,
            advance_bytes: 264,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 1,
        },
        SynthProfile {
            name: "197.parser",
            suite: Spec,
            base_mb: 29,
            live_objects: 25_000,
            obj_size: (32, 256),
            churn: 10,
            advance_bytes: 3_363,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 11,
        },
        SynthProfile {
            name: "252.eon",
            suite: Spec,
            base_mb: 1,
            live_objects: 2_000,
            obj_size: (32, 128),
            churn: 3,
            advance_bytes: 16,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 1,
        },
        SynthProfile {
            name: "253.perlbmk",
            suite: Spec,
            base_mb: 52,
            live_objects: 60_000,
            obj_size: (64, 512),
            churn: 4,
            advance_bytes: 1_441,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 5,
        },
        SynthProfile {
            name: "255.vortex",
            suite: Spec,
            base_mb: 100,
            live_objects: 25_000,
            obj_size: (128, 1024),
            churn: 6,
            advance_bytes: 10_300,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 33,
        },
        SynthProfile {
            name: "256.bzip2",
            suite: Spec,
            base_mb: 183,
            live_objects: 150,
            obj_size: (8192, 65_536),
            churn: 1,
            advance_bytes: 4_520,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 16,
        },
        SynthProfile {
            name: "300.twolf",
            suite: Spec,
            base_mb: 1,
            live_objects: 60_000,
            obj_size: (16, 48),
            churn: 10,
            advance_bytes: 490,
            compute_ns: 50_000,
            gap_us: 0,
            window_mb: 2,
        },
    ]
}

/// Returns the four allocation-intensive profiles.
///
/// Their heaps are small and churned constantly, so the pool itself is
/// the working set; no separate cursor advance is needed.
pub fn alloc_intensive_profiles() -> Vec<SynthProfile> {
    use Suite::AllocIntensive;
    vec![
        SynthProfile {
            name: "cfrac",
            suite: AllocIntensive,
            base_mb: 0,
            live_objects: 9_000,
            obj_size: (8, 40),
            churn: 40,
            advance_bytes: 0,
            compute_ns: 12_000,
            gap_us: 0,
            window_mb: 1,
        },
        SynthProfile {
            name: "espresso",
            suite: AllocIntensive,
            base_mb: 0,
            live_objects: 4_500,
            obj_size: (16, 128),
            churn: 30,
            advance_bytes: 0,
            compute_ns: 15_000,
            gap_us: 0,
            window_mb: 1,
        },
        SynthProfile {
            name: "lindsay",
            suite: AllocIntensive,
            base_mb: 1,
            live_objects: 250,
            obj_size: (64, 512),
            churn: 6,
            advance_bytes: 64,
            compute_ns: 20_000,
            gap_us: 0,
            window_mb: 1,
        },
        SynthProfile {
            name: "p2c",
            suite: AllocIntensive,
            base_mb: 0,
            live_objects: 12_000,
            obj_size: (8, 48),
            churn: 20,
            advance_bytes: 0,
            compute_ns: 10_000,
            gap_us: 0,
            window_mb: 1,
        },
    ]
}

/// A deterministic synthetic application following a [`SynthProfile`].
#[derive(Clone)]
pub struct SynthApp {
    profile: SynthProfile,
    rng: SmallRng,
    base: Vec<Addr>,
    pool: Vec<Addr>,
    touch_cursor: u64,
}

impl SynthApp {
    /// Creates an app for the profile.
    pub fn new(profile: SynthProfile) -> SynthApp {
        SynthApp {
            profile,
            rng: SmallRng::seed_from_u64(0x5e1f),
            base: Vec::new(),
            pool: Vec::new(),
            touch_cursor: 0,
        }
    }

    /// Returns the profile.
    pub fn profile(&self) -> &SynthProfile {
        &self.profile
    }

    fn alloc_small(&mut self, ctx: &mut ProcessCtx) -> Result<Addr, Fault> {
        let (lo, hi) = self.profile.obj_size;
        let size = self.rng.random_range(lo..=hi);
        let p = ctx.call("obj_alloc", |ctx| ctx.malloc(size))?;
        ctx.write_u64(p, size)?;
        Ok(p)
    }
}

impl App for SynthApp {
    fn name(&self) -> &'static str {
        self.profile.name
    }

    fn init(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        ctx.call("startup", |ctx| {
            for _ in 0..self.profile.base_mb {
                // Large blocks map heap space without touching every page,
                // like the big SPEC data arrays before first use.
                let b = ctx.call("base_alloc", |ctx| ctx.malloc(BASE_BLOCK - 64))?;
                ctx.write_u64(b, 0)?;
                self.base.push(b);
            }
            for _ in 0..self.profile.live_objects {
                let p = self.alloc_small(ctx)?;
                self.pool.push(p);
            }
            Ok(())
        })
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, _input: &Input) -> Result<Response, Fault> {
        ctx.call("work", |ctx| {
            // Allocation churn: replace random pool members.
            for _ in 0..self.profile.churn {
                if !self.pool.is_empty() {
                    let idx = self.rng.random_range(0..self.pool.len());
                    let victim = self.pool.swap_remove(idx);
                    ctx.call("obj_free", |ctx| ctx.free(victim))?;
                }
                let p = self.alloc_small(ctx)?;
                self.pool.push(p);
            }
            // Dirty the working set (drives COW checkpoint cost): the
            // cursor advances by exactly `advance_bytes`, cycling within
            // a bounded window.
            let mut remaining = self.profile.advance_bytes;
            let window = (self.base.len() as u64 * BASE_BLOCK)
                .min(self.profile.window_mb << 20)
                .max((self.base.len().min(1) as u64) * BASE_BLOCK);
            while remaining > 0 && !self.base.is_empty() {
                let off = self.touch_cursor % window;
                let block = self.base[(off / BASE_BLOCK) as usize];
                let inner = off % BASE_BLOCK;
                // Keep clear of the next chunk's metadata at the block end.
                let usable = BASE_BLOCK - 4096;
                if inner >= usable {
                    self.touch_cursor = self.touch_cursor.wrapping_add(BASE_BLOCK - inner);
                    continue;
                }
                let chunk = remaining.min(usable - inner);
                ctx.fill(block.offset(inner), chunk, 0x77)?;
                self.touch_cursor = self.touch_cursor.wrapping_add(chunk);
                remaining -= chunk;
            }
            if self.base.is_empty() && self.profile.advance_bytes > 0 {
                // Small-heap programs touch their pool instead.
                for _ in 0..(self.profile.advance_bytes / 64).max(1) {
                    let idx = self.rng.random_range(0..self.pool.len());
                    let p = self.pool[idx];
                    ctx.write_u64(p.offset(8), self.touch_cursor)?;
                    self.touch_cursor += 1;
                }
            }
            ctx.clock.advance(self.profile.compute_ns);
            Ok(Response::bytes(64))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

/// Builds a plain workload of `n` inputs for a profile.
pub fn workload(profile: &SynthProfile, n: usize) -> Vec<Input> {
    (0..n)
        .map(|_| InputBuilder::op(0).gap_us(profile.gap_us).build())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_proc::Process;

    fn small(name: &'static str) -> SynthProfile {
        SynthProfile {
            name,
            suite: Suite::AllocIntensive,
            base_mb: 2,
            live_objects: 500,
            obj_size: (16, 64),
            churn: 5,
            advance_bytes: 4_096,
            compute_ns: 1_000,
            gap_us: 100,
            window_mb: 2,
        }
    }

    #[test]
    fn profiles_cover_paper_tables() {
        assert_eq!(spec_profiles().len(), 11);
        assert_eq!(alloc_intensive_profiles().len(), 4);
        let names: Vec<_> = spec_profiles().iter().map(|p| p.name).collect();
        assert!(names.contains(&"164.gzip") && names.contains(&"300.twolf"));
    }

    #[test]
    fn synth_app_runs_deterministically() {
        let run = |seed_inputs: usize| {
            let ctx = ProcessCtx::new(1 << 30);
            let mut p = Process::launch(Box::new(SynthApp::new(small("t"))), ctx).unwrap();
            for input in workload(&small("t"), seed_inputs) {
                assert!(p.feed(input).is_ok());
            }
            (
                p.ctx.clock.now(),
                p.ctx.alloc().heap().stats().allocs,
                p.ctx.alloc().heap().stats().heap_bytes,
            )
        };
        assert_eq!(run(50), run(50), "two runs must be byte-identical");
    }

    #[test]
    fn heap_reaches_base_size() {
        let ctx = ProcessCtx::new(1 << 30);
        let mut p = Process::launch(Box::new(SynthApp::new(small("t"))), ctx).unwrap();
        for input in workload(&small("t"), 10) {
            assert!(p.feed(input).is_ok());
        }
        let heap_mb = p.ctx.alloc().heap().stats().heap_bytes as f64 / 1048576.0;
        assert!(heap_mb >= 2.0, "heap {heap_mb} MB");
    }

    #[test]
    fn touching_dirties_pages() {
        let ctx = ProcessCtx::new(1 << 30);
        let mut p = Process::launch(Box::new(SynthApp::new(small("t"))), ctx).unwrap();
        p.ctx.mem.take_dirty_pages();
        for input in workload(&small("t"), 20) {
            assert!(p.feed(input).is_ok());
        }
        assert!(p.ctx.mem.dirty_page_count() > 10);
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        let ctx = ProcessCtx::new(1 << 30);
        let mut p = Process::launch(Box::new(SynthApp::new(small("t"))), ctx).unwrap();
        for input in workload(&small("t"), 10) {
            p.feed(input);
        }
        let snap = p.snapshot();
        for input in workload(&small("t"), 10) {
            p.feed(input);
        }
        let allocs_first = p.ctx.alloc().heap().stats().allocs;
        p.restore(&snap);
        while p.step().is_some() {}
        assert_eq!(p.ctx.alloc().heap().stats().allocs, allocs_first);
    }
}
