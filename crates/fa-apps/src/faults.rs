//! Named fault-injection scenarios for the benchmark harnesses.
//!
//! Each scenario is a seeded [`FaultPlan`] targeting one (or all) of the
//! pipeline's own stages, so experiments and CI can ask for e.g.
//! `"checkpoint-corruption"` by name and get the same deterministic
//! schedule every run.

use fa_faults::{FaultPlan, FaultStage, Injection};

/// The scenario names [`fault_scenario`] understands, in severity order.
pub const FAULT_SCENARIOS: &[&str] = &[
    "none",
    "checkpoint-corruption",
    "diagnosis-timeout",
    "flaky-reexec",
    "trial-hang",
    "validation-fork",
    "pool-io",
    "wal-io",
    "kitchen-sink",
];

/// Builds the named fault scenario with the given seed.
///
/// Returns `None` for an unknown name. `"none"` is the identity plan
/// (production behavior); `"kitchen-sink"` hits every stage
/// probabilistically and is what the liveness property tests lean on.
pub fn fault_scenario(name: &str, seed: u64) -> Option<FaultPlan> {
    let plan = match name {
        "none" => FaultPlan::none(),
        // Every third checkpoint silently rots; recoveries must fall
        // back to older intact ones.
        "checkpoint-corruption" => FaultPlan::builder(seed)
            .inject(FaultStage::CheckpointCorrupt, Injection::EveryNth(3))
            .build(),
        // The first diagnosis wedges past its deadline; the ladder must
        // carry the stream from there.
        "diagnosis-timeout" => FaultPlan::builder(seed)
            .inject(FaultStage::DiagnosisTimeout, Injection::Nth(vec![0]))
            .build(),
        // ~30% of diagnosis re-executions fail transiently and must be
        // retried with backoff.
        "flaky-reexec" => FaultPlan::builder(seed)
            .inject(FaultStage::ReexecFlaky, Injection::PerMille(300))
            .build(),
        // ~25% of diagnosis trials wedge; the watchdog must reap and
        // retry them (and escalate, never stall a wave).
        "trial-hang" => FaultPlan::builder(seed)
            .inject(FaultStage::TrialHang, Injection::PerMille(250))
            .build(),
        // Every validation fork dies; patches stay installed unvalidated.
        "validation-fork" => FaultPlan::builder(seed)
            .inject(FaultStage::ValidationFork, Injection::EveryNth(1))
            .build(),
        // Every pool persistence write errors; the pool must retry, log,
        // and degrade to in-memory operation.
        "pool-io" => FaultPlan::builder(seed)
            .inject(FaultStage::PoolPersistIo, Injection::EveryNth(1))
            .build(),
        // Every journal append errors; the Wal must retry, then degrade
        // (journaling off, supervision continues in-memory).
        "wal-io" => FaultPlan::builder(seed)
            .inject(FaultStage::WalAppendIo, Injection::EveryNth(1))
            .build(),
        // Everything at once, probabilistically.
        "kitchen-sink" => FaultPlan::builder(seed)
            .inject(FaultStage::CheckpointCorrupt, Injection::PerMille(200))
            .inject(FaultStage::ReexecFlaky, Injection::PerMille(200))
            .inject(FaultStage::DiagnosisTimeout, Injection::PerMille(150))
            .inject(FaultStage::TrialHang, Injection::PerMille(150))
            .inject(FaultStage::ValidationFork, Injection::PerMille(300))
            .inject(FaultStage::PoolPersistIo, Injection::PerMille(500))
            .inject(FaultStage::WalAppendIo, Injection::PerMille(200))
            .build(),
        _ => return None,
    };
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_scenario_builds() {
        for name in FAULT_SCENARIOS {
            let plan = fault_scenario(name, 7).expect("listed scenario builds");
            assert_eq!(plan.is_noop(), *name == "none", "{name}");
        }
        assert!(fault_scenario("no-such-scenario", 7).is_none());
    }

    #[test]
    fn scenarios_are_deterministic_in_the_seed() {
        let a = fault_scenario("kitchen-sink", 11).unwrap();
        let b = fault_scenario("kitchen-sink", 11).unwrap();
        for _ in 0..200 {
            assert_eq!(
                a.should_fail(FaultStage::CheckpointCorrupt),
                b.should_fail(FaultStage::CheckpointCorrupt)
            );
            assert_eq!(
                a.should_fail(FaultStage::PoolPersistIo),
                b.should_fail(FaultStage::PoolPersistIo)
            );
        }
        for &stage in FaultStage::ALL.iter() {
            assert_eq!(a.fired(stage), b.fired(stage));
        }
    }
}
