//! The applications of the paper's evaluation (Table 2) and the synthetic
//! benchmark profiles (SPEC INT2000 + allocation-intensive).
//!
//! Each application is a deterministic miniature of the real program with
//! **the same bug kind in the same structural place**:
//!
//! | app | version | bug | structural place |
//! |---|---|---|---|
//! | Apache | 2.0.51 | dangling pointer read | LDAP cache purge (`util_ald_cache_purge`) |
//! | Apache-uir | 2.0.51 | uninitialized read (injected) | header flags parsing |
//! | Apache-dpw | 2.0.51 | dangling pointer write (injected) | session teardown |
//! | Squid | 2.3 | buffer overflow | `ftpBuildTitleUrl` URL assembly |
//! | CVS | 1.11.4 | double free | error-path cleanup |
//! | Pine | 4.44 | buffer overflow | rfc822 address quoting |
//! | Mutt | 1.3.99i | buffer overflow | `utf8_to_utf7` conversion |
//! | M4 | 1.4.4 | dangling pointer read | macro undefine during expansion |
//! | BC | 1.06 | two buffer overflows | `more_arrays` storage growth |
//!
//! First-Aid only observes allocation call-sites, heap layout, and failure
//! symptoms, so these miniatures exercise the diagnosis machinery exactly
//! as the full programs would.

pub mod apache;
pub mod bc;
pub mod cvs;
pub mod faults;
pub mod fleet;
pub mod m4;
pub mod mutt;
pub mod pine;
pub mod registry;
pub mod squid;
pub mod synth;

pub use faults::{fault_scenario, FAULT_SCENARIOS};
pub use registry::{all_specs, spec_by_key, AppSpec, WorkloadSpec};
pub use synth::{alloc_intensive_profiles, spec_profiles, SynthApp, SynthProfile};
