//! Mutt 1.3.99i — the `utf8_to_utf7` buffer overflow.
//!
//! The real bug: Mutt's IMAP code converts mailbox names from UTF-8 to
//! modified UTF-7 with a destination buffer sized `len * 2 + 1`, but the
//! worst-case expansion is larger; names dominated by non-ASCII characters
//! overflow the buffer.

use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use fa_allocext::BugType;

use crate::registry::{AppSpec, WorkloadSpec};

/// Request ops.
pub mod ops {
    /// Fetch message `a` from the current mailbox.
    pub const FETCH: u32 = 0;
    /// Select the IMAP mailbox named in `data` (raw UTF-8 bytes) — the
    /// buggy conversion path.
    pub const SELECT: u32 = 1;
}

/// The Mutt miniature.
#[derive(Clone, Default)]
pub struct Mutt;

impl Mutt {
    /// Modified-UTF-7 worst case: each non-ASCII byte expands to ~4 output
    /// bytes (base64 of UTF-16 plus shifts).
    fn utf7_len(name: &[u8]) -> u64 {
        name.iter().map(|&b| if b >= 0x80 { 4u64 } else { 1 }).sum()
    }

    fn fetch(ctx: &mut ProcessCtx, size: u64) -> Result<Response, Fault> {
        ctx.call("imap_fetch_message", |ctx| {
            let size = size.clamp(512, 32_768);
            let buf = ctx.call("safe_malloc", |ctx| ctx.malloc(size))?;
            ctx.fill(buf, size, b'm')?;
            ctx.free(buf)?;
            Ok(Response::bytes(size))
        })
    }

    fn select(ctx: &mut ProcessCtx, name: &[u8]) -> Result<Response, Fault> {
        ctx.call("imap_select_mailbox", |ctx| {
            // BUG: `len * 2 + 1` undercounts the UTF-7 expansion.
            let estimate = name.len() as u64 * 2 + 1;
            let out = ctx.call("utf8_to_utf7", |ctx| ctx.malloc(estimate))?;
            let state = ctx.call("imap_state_alloc", |ctx| ctx.malloc(160))?;
            let actual = Mutt::utf7_len(name);
            ctx.fill(out, actual, b'&')?;
            ctx.fill(state, 160, 0x07)?;
            ctx.free(state)?;
            ctx.free(out)?;
            Ok(Response::bytes(256))
        })
    }
}

impl App for Mutt {
    fn name(&self) -> &'static str {
        "mutt"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        // Screen rendering + IMAP protocol cost.
        ctx.clock.advance(60_000);
        match input.op {
            ops::SELECT => Mutt::select(ctx, &input.data),
            _ => Mutt::fetch(ctx, input.a),
        }
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

/// Builds the Mutt workload: fetches plus mailbox selects; triggers carry
/// a mostly-non-ASCII mailbox name.
pub fn workload(spec: &WorkloadSpec) -> Vec<Input> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    (0..spec.n)
        .map(|i| {
            if spec.triggers.contains(&i) {
                return InputBuilder::op(ops::SELECT)
                    .data(vec![0xc3; 24]) // 24 non-ASCII bytes: 96 > 49
                    .gap_us(3_000)
                    .buggy()
                    .build();
            }
            if rng.random_ratio(1, 8) {
                InputBuilder::op(ops::SELECT)
                    .data(b"INBOX/lists".to_vec())
                    .gap_us(3_000)
                    .build()
            } else {
                InputBuilder::op(ops::FETCH)
                    .a(rng.random_range(512u64..16_384))
                    .gap_us(3_000)
                    .build()
            }
        })
        .collect()
}

/// Paper Table 2 row: Mutt 1.3.99i, buffer overflow, 86K LOC, email
/// client.
pub fn spec() -> AppSpec {
    AppSpec {
        key: "mutt",
        display: "Mutt",
        version: "1.3.99i",
        loc: "86K",
        description: "email client",
        bug_desc: "buffer overflow",
        expect_bug: BugType::BufferOverflow,
        expect_sites: 1,
        build: || Box::new(Mutt),
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::ExtAllocator;
    use fa_proc::Process;

    fn launch() -> Process {
        let mut ctx = ProcessCtx::new(1 << 28);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        Process::launch(Box::new(Mutt), ctx).unwrap()
    }

    #[test]
    fn ascii_mailboxes_are_clean() {
        let mut p = launch();
        for input in workload(&WorkloadSpec::new(150, &[])) {
            assert!(p.feed(input).is_ok());
        }
    }

    #[test]
    fn non_ascii_mailbox_overflows() {
        let mut p = launch();
        let w = workload(&WorkloadSpec::new(60, &[20]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        assert_eq!(failed_at, Some(20));
    }

    #[test]
    fn utf7_expansion_math() {
        assert_eq!(Mutt::utf7_len(b"inbox"), 5);
        assert_eq!(Mutt::utf7_len(&[0xc3, 0xa9]), 8);
    }
}
