//! The application registry (paper Table 2).

use fa_allocext::BugType;
use fa_proc::{BoxedApp, Input};

/// Parameters for generating a workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Total number of inputs.
    pub n: usize,
    /// Indices of bug-triggering inputs.
    pub triggers: Vec<usize>,
    /// RNG seed for request mix/sizes.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A workload of `n` inputs with triggers at the given indices.
    pub fn new(n: usize, triggers: &[usize]) -> WorkloadSpec {
        WorkloadSpec {
            n,
            triggers: triggers.to_vec(),
            seed: 42,
        }
    }
}

/// Registry entry for one evaluated application.
pub struct AppSpec {
    /// Short key ("apache", "squid", ...).
    pub key: &'static str,
    /// Display name as in paper Table 2.
    pub display: &'static str,
    /// Version evaluated in the paper.
    pub version: &'static str,
    /// Lines of code of the real application (paper Table 2).
    pub loc: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Bug description as in paper Table 2.
    pub bug_desc: &'static str,
    /// The bug type First-Aid is expected to diagnose.
    pub expect_bug: BugType,
    /// Expected number of patched call-sites (paper Table 3).
    pub expect_sites: usize,
    /// Builds a fresh application instance.
    pub build: fn() -> BoxedApp,
    /// Builds a workload.
    pub workload: fn(&WorkloadSpec) -> Vec<Input>,
}

/// Returns the specs of all nine evaluated cases (7 real bugs + 2
/// injected), in paper Table 3 order.
pub fn all_specs() -> Vec<AppSpec> {
    vec![
        crate::apache::spec(),
        crate::squid::spec(),
        crate::cvs::spec(),
        crate::pine::spec(),
        crate::mutt::spec(),
        crate::m4::spec(),
        crate::bc::spec(),
        crate::apache::spec_uir(),
        crate::apache::spec_dpw(),
    ]
}

/// Looks up a spec by key.
pub fn spec_by_key(key: &str) -> Option<AppSpec> {
    all_specs().into_iter().find(|s| s.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table2() {
        let specs = all_specs();
        assert_eq!(specs.len(), 9);
        let keys: Vec<&str> = specs.iter().map(|s| s.key).collect();
        assert_eq!(
            keys,
            vec![
                "apache",
                "squid",
                "cvs",
                "pine",
                "mutt",
                "m4",
                "bc",
                "apache-uir",
                "apache-dpw"
            ]
        );
        assert_eq!(
            spec_by_key("squid").unwrap().expect_bug,
            BugType::BufferOverflow
        );
        assert_eq!(spec_by_key("cvs").unwrap().expect_bug, BugType::DoubleFree);
        assert!(spec_by_key("nonesuch").is_none());
    }

    #[test]
    fn every_app_builds_and_generates_workloads() {
        for spec in all_specs() {
            let app = (spec.build)();
            assert!(!app.name().is_empty());
            let w = (spec.workload)(&WorkloadSpec::new(50, &[25]));
            assert_eq!(w.len(), 50);
            assert!(w[25].buggy, "{}: trigger input must be marked", spec.key);
            assert!(
                w.iter().filter(|i| i.buggy).count() == 1,
                "{}: exactly one trigger",
                spec.key
            );
        }
    }
}
