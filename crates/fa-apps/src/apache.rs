//! Apache httpd 2.0.51 — the LDAP-cache dangling-pointer-read bug, plus
//! the two injected variants of the paper (`Apache-uir`, `Apache-dpw`).
//!
//! The real bug: `util_ald_cache_purge` frees LDAP cache entries while
//! search nodes retain pointers to them; later cache fetches dereference
//! the dangling pointers (paper Fig. 5 names `util_ald_free`,
//! `util_ald_cache_purge`, `util_ldap_search_node_free`,
//! `util_ald_cache_fetch`). This miniature reproduces the structure:
//!
//! * seven entry *classes*, each freed through its own wrapper under
//!   `util_ald_cache_purge` — seven distinct deallocation call-sites, the
//!   "delay free(7)" of paper Table 3;
//! * the purge leaves stale search-node pointers; a revalidation pass runs
//!   a few hundred requests later, so the failure surfaces ~2–3 checkpoint
//!   intervals after the bug-triggering point (the paper notes exactly
//!   this for Apache, explaining its longer recovery).

use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use fa_allocext::BugType;

use crate::registry::{AppSpec, WorkloadSpec};

/// Request ops understood by the Apache miniature.
pub mod ops {
    /// Fetch a static page of `a` bytes.
    pub const GET: u32 = 0;
    /// LDAP-backed lookup for key `a`.
    pub const LDAP: u32 = 1;
    /// LDAP maintenance — runs the buggy cache purge.
    pub const MAINT: u32 = 2;
    /// Parse a request with extended header flags (uninit-read variant).
    pub const HDR: u32 = 3;
    /// Close the client session (dangling-write variant).
    pub const CLOSE: u32 = 4;
}

/// Magic stamped into every live cache entry.
const MAGIC: u64 = 0x1dab_cafe_0451;
/// Cache entry classes (each has its own free wrapper → 7 call-sites).
const CLASSES: usize = 7;
/// Names of the per-class free wrappers (modeled on the real module).
const FREE_FNS: [&str; CLASSES] = [
    "util_ldap_search_node_free",
    "util_ldap_url_node_free",
    "util_ldap_compare_node_free",
    "util_ldap_dn_compare_node_free",
    "util_ldap_netgroup_node_free",
    "util_ldap_binddn_free",
    "util_ldap_vals_free",
];
/// Requests between the purge and the revalidation that trips over the
/// dangling pointers (~2.5 checkpoint intervals at the default request
/// rate).
const REVALIDATE_DELAY: u64 = 250;
/// Cache entry payload size.
const ENTRY_SIZE: u64 = 256;

/// Which injected variant this instance runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Variant {
    /// The real dangling-read bug.
    Base,
    /// Injected uninitialized read in header parsing.
    Uir,
    /// Injected dangling write in session teardown.
    Dpw,
}

#[derive(Clone)]
struct Entry {
    addr: Addr,
    key: u64,
}

/// The Apache miniature.
#[derive(Clone)]
pub struct Apache {
    variant: Variant,
    /// util_ald_cache: current entry per class.
    cache: Vec<Option<Entry>>,
    /// Dangling search-node pointers left by the buggy purge.
    stale_nodes: Vec<(usize, Entry)>,
    /// Request count; drives the delayed revalidation.
    req_counter: u64,
    /// When set, revalidation runs at this request count.
    revalidate_at: Option<u64>,
    /// Dangling-write variant: stale session pointer + the stats block
    /// that reuses its chunk.
    dpw_stale: Option<Addr>,
    dpw_stats: Option<Addr>,
    dpw_due: Option<u64>,
}

impl Apache {
    /// Creates the base (dangling-read) variant.
    pub fn new() -> Apache {
        Apache::with_variant(Variant::Base)
    }

    fn with_variant(variant: Variant) -> Apache {
        Apache {
            variant,
            cache: vec![None; CLASSES],
            stale_nodes: Vec::new(),
            req_counter: 0,
            revalidate_at: None,
            dpw_stale: None,
            dpw_stats: None,
            dpw_due: None,
        }
    }

    fn cache_insert(
        &mut self,
        ctx: &mut ProcessCtx,
        class: usize,
        key: u64,
    ) -> Result<Addr, Fault> {
        ctx.call("util_ald_cache_insert", |ctx| {
            let addr = ctx.call("util_ald_alloc", |ctx| ctx.malloc(ENTRY_SIZE))?;
            ctx.write_u64(addr, MAGIC)?;
            ctx.write_u64(addr.offset(8), key)?;
            ctx.fill(addr.offset(16), ENTRY_SIZE - 16, (key % 251) as u8)?;
            Ok(addr)
        })
        .inspect(|&addr| {
            self.cache[class] = Some(Entry { addr, key });
        })
    }

    fn cache_fetch(ctx: &mut ProcessCtx, entry: &Entry) -> Result<(), Fault> {
        ctx.call("util_ald_cache_fetch", |ctx| {
            let magic = ctx.read_u64(entry.addr)?;
            let key = ctx.read_u64(entry.addr.offset(8))?;
            ctx.check(
                magic == MAGIC && key == entry.key,
                "ldap cache entry integrity check failed",
            )?;
            let _ = ctx.read_bytes(entry.addr.offset(16), 64)?;
            Ok(())
        })
    }

    /// The buggy purge: frees every cached entry through its class's
    /// wrapper, but leaves the search-node pointers behind.
    fn cache_purge(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        let entries: Vec<(usize, Entry)> = self
            .cache
            .iter()
            .enumerate()
            .filter_map(|(c, e)| e.clone().map(|e| (c, e)))
            .collect();
        ctx.call("util_ald_cache_purge", |ctx| {
            for (class, entry) in &entries {
                ctx.call(FREE_FNS[*class], |ctx| {
                    ctx.call("util_ald_free", |ctx| ctx.free(entry.addr))
                })?;
            }
            Ok(())
        })?;
        for (class, entry) in entries {
            self.cache[class] = None;
            // BUG: search nodes keep referencing the freed entries.
            self.stale_nodes.push((class, entry));
        }
        self.revalidate_at = Some(self.req_counter + REVALIDATE_DELAY);
        Ok(())
    }

    /// Walks the (dangling) search nodes — the failure point.
    fn revalidate(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        let nodes = std::mem::take(&mut self.stale_nodes);
        ctx.call("util_ldap_revalidate", |ctx| {
            for (_class, entry) in &nodes {
                Apache::cache_fetch(ctx, entry)?;
            }
            Ok(())
        })
    }

    fn serve_page(ctx: &mut ProcessCtx, size: u64) -> Result<Response, Fault> {
        ctx.call("ap_process_request", |ctx| {
            let size = size.clamp(1024, 65_536);
            let buf = ctx.call("ap_rgetline_alloc", |ctx| ctx.malloc(size))?;
            ctx.fill(buf, size, 0x42)?;
            ctx.free(buf)?;
            Ok(Response::bytes(size))
        })
    }

    /// Injected uninitialized read (Apache-uir): the flags buffer is
    /// assumed zeroed, but it recycles a dirtied chunk.
    fn parse_headers(ctx: &mut ProcessCtx) -> Result<Response, Fault> {
        ctx.call("ap_parse_headers", |ctx| {
            // A scratch buffer dirties the chunk that the flags buffer
            // will reuse.
            let scratch = ctx.call("ap_scratch_alloc", |ctx| ctx.malloc(128))?;
            ctx.fill(scratch, 128, 0x6b)?;
            ctx.free(scratch)?;
            let flags = ctx.call("ap_flags_alloc", |ctx| ctx.malloc(128))?;
            let flag = ctx.read_u8(flags.offset(65))?;
            ctx.check(flag <= 1, "invalid header flag bits")?;
            ctx.free(flags)?;
            Ok(Response::bytes(512))
        })
    }

    /// Injected dangling write (Apache-dpw): session teardown frees the
    /// connection buffer without clearing the pointer; a keepalive timer
    /// keeps writing through it.
    fn close_session(&mut self, ctx: &mut ProcessCtx) -> Result<Response, Fault> {
        if self.dpw_stale.is_none() {
            // Lazily create the session buffer on first close request.
            let s = ctx.call("ap_session_alloc", |ctx| ctx.malloc(96))?;
            ctx.fill(s, 96, 0)?;
            self.dpw_stale = Some(s);
        }
        let stale = self.dpw_stale.unwrap();
        ctx.call("ap_session_close", |ctx| ctx.free(stale))?;
        // The scoreboard immediately reuses the chunk for its counters.
        let stats = ctx.call("ap_scoreboard_alloc", |ctx| ctx.malloc(96))?;
        ctx.fill(stats, 96, 0)?;
        self.dpw_stats = Some(stats);
        self.dpw_due = Some(self.req_counter + 12);
        Ok(Response::bytes(1))
    }

    fn keepalive_tick(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        let (Some(stale), Some(stats)) = (self.dpw_stale, self.dpw_stats) else {
            return Ok(());
        };
        // BUG: the keepalive timer writes through the stale pointer,
        // corrupting the scoreboard counters that reused the chunk.
        ctx.call("ap_keepalive_touch", |ctx| {
            ctx.write_u64(stale.offset(24), 0xdede_dede)
        })?;
        let v = ctx.read_u64(stats.offset(24))?;
        ctx.check(v < 1_000_000, "scoreboard counter out of range")?;
        ctx.write_u64(stats.offset(24), v + 1)?;
        self.dpw_stale = None;
        self.dpw_stats = None;
        self.dpw_due = None;
        Ok(())
    }
}

impl Default for Apache {
    fn default() -> Self {
        Apache::new()
    }
}

/// Virtual request-processing cost (parsing, syscalls) per request, ns.
const REQ_COST_NS: u64 = 80_000;

impl App for Apache {
    fn name(&self) -> &'static str {
        match self.variant {
            Variant::Base => "apache",
            Variant::Uir => "apache-uir",
            Variant::Dpw => "apache-dpw",
        }
    }

    fn init(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        ctx.call("ap_ldap_init", |ctx| {
            for class in 0..CLASSES {
                self.cache_insert(ctx, class, class as u64 + 1)?;
            }
            Ok(())
        })
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.clock.advance(REQ_COST_NS);
        self.req_counter += 1;
        // Delayed events fire before the request proper.
        if self.revalidate_at.is_some_and(|t| self.req_counter >= t) {
            self.revalidate_at = None;
            self.revalidate(ctx)?;
        }
        if self.dpw_due.is_some_and(|t| self.req_counter >= t) {
            self.keepalive_tick(ctx)?;
        }
        match input.op {
            ops::LDAP => ctx.call("util_ldap_handler", |ctx| {
                let key = input.a;
                let class = (key as usize) % CLASSES;
                match self.cache[class].clone() {
                    Some(entry) if entry.key == key => {
                        Apache::cache_fetch(ctx, &entry)?;
                    }
                    _ => {
                        let addr = self.cache_insert(ctx, class, key)?;
                        let _ = ctx.read_u64(addr)?;
                    }
                }
                Ok(Response::bytes(2048))
            }),
            ops::MAINT => {
                ctx.call("util_ldap_maintenance", |ctx| self.cache_purge(ctx))?;
                Ok(Response::bytes(64))
            }
            ops::HDR => Apache::parse_headers(ctx),
            ops::CLOSE => self.close_session(ctx),
            _ => Apache::serve_page(ctx, input.a),
        }
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// Workloads + specs
// ---------------------------------------------------------------------

fn workload_with(trigger_op: u32, spec: &WorkloadSpec) -> Vec<Input> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    (0..spec.n)
        .map(|i| {
            if spec.triggers.contains(&i) {
                return InputBuilder::op(trigger_op)
                    .a(9)
                    .gap_us(2_000)
                    .buggy()
                    .build();
            }
            if rng.random_ratio(2, 5) {
                // Keys drawn fresh after purges so re-inserts reuse chunks.
                InputBuilder::op(ops::LDAP)
                    .a(rng.random_range(1u64..2_000))
                    .gap_us(2_000)
                    .build()
            } else {
                InputBuilder::op(ops::GET)
                    .a(rng.random_range(4_096u64..32_768))
                    .gap_us(2_000)
                    .build()
            }
        })
        .collect()
}

/// The real dangling-read case (paper Table 2 row 1).
pub fn spec() -> AppSpec {
    AppSpec {
        key: "apache",
        display: "Apache",
        version: "2.0.51",
        loc: "263K",
        description: "web server",
        bug_desc: "dangling pointer read",
        expect_bug: BugType::DanglingRead,
        expect_sites: 7,
        build: || Box::new(Apache::new()),
        workload: |w| workload_with(ops::MAINT, w),
    }
}

/// The injected uninitialized-read case (Apache-uir).
pub fn spec_uir() -> AppSpec {
    AppSpec {
        key: "apache-uir",
        display: "Apache-uir",
        version: "2.0.51",
        loc: "263K",
        description: "web server (injected uninitialized read)",
        bug_desc: "uninitialized read",
        expect_bug: BugType::UninitRead,
        expect_sites: 1,
        build: || Box::new(Apache::with_variant(Variant::Uir)),
        workload: |w| workload_with(ops::HDR, w),
    }
}

/// The injected dangling-write case (Apache-dpw).
pub fn spec_dpw() -> AppSpec {
    AppSpec {
        key: "apache-dpw",
        display: "Apache-dpw",
        version: "2.0.51",
        loc: "263K",
        description: "web server (injected dangling pointer write)",
        bug_desc: "dangling pointer write",
        expect_bug: BugType::DanglingWrite,
        expect_sites: 1,
        build: || Box::new(Apache::with_variant(Variant::Dpw)),
        workload: |w| workload_with(ops::CLOSE, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::ExtAllocator;
    use fa_proc::Process;

    fn launch(variant: Variant) -> Process {
        let mut ctx = ProcessCtx::new(1 << 28);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        Process::launch(Box::new(Apache::with_variant(variant)), ctx).unwrap()
    }

    #[test]
    fn normal_traffic_is_clean() {
        let mut p = launch(Variant::Base);
        let w = workload_with(ops::MAINT, &WorkloadSpec::new(300, &[]));
        for input in w {
            assert!(p.feed(input).is_ok());
        }
        assert!(p.failure.is_none());
    }

    #[test]
    fn purge_causes_delayed_dangling_read_failure() {
        let mut p = launch(Variant::Base);
        let w = workload_with(ops::MAINT, &WorkloadSpec::new(600, &[100]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        let failed_at = failed_at.expect("dangling read must eventually fail");
        assert!(
            failed_at > 100 + 200,
            "failure must come well after the trigger (got {failed_at})"
        );
        let fault = &p.failure.as_ref().unwrap().fault;
        assert_eq!(fault.class(), "assertion");
    }

    #[test]
    fn uir_variant_fails_at_trigger() {
        let mut p = launch(Variant::Uir);
        let w = workload_with(ops::HDR, &WorkloadSpec::new(120, &[60]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        assert_eq!(failed_at, Some(60), "uninit read fails at the trigger");
    }

    #[test]
    fn dpw_variant_fails_shortly_after_trigger() {
        let mut p = launch(Variant::Dpw);
        let w = workload_with(ops::CLOSE, &WorkloadSpec::new(120, &[60]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        let failed_at = failed_at.expect("dangling write must fail");
        assert!((61..=75).contains(&failed_at), "failed at {failed_at}");
    }

    #[test]
    fn seven_distinct_free_wrappers() {
        let names: std::collections::HashSet<&str> = FREE_FNS.iter().copied().collect();
        assert_eq!(names.len(), CLASSES);
    }
}
