//! M4 1.4.4 — dangling pointer reads from undefining macros that are
//! still being expanded.
//!
//! The real bug: `undefine` frees a macro's definition text while the
//! expansion stack still references it; the expansion later reads the
//! freed text. Definitions are freed through two different paths (small
//! definitions inline, large ones via the token-data path), which is why
//! the paper patches **two** call-sites ("delay free(2)", Table 3).

use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use fa_allocext::BugType;

use crate::registry::{AppSpec, WorkloadSpec};

/// Request ops.
pub mod ops {
    /// Define macro `a` with body length `b`.
    pub const DEFINE: u32 = 0;
    /// Expand macro `a`.
    pub const EXPAND: u32 = 1;
    /// Undefine-while-expanding — the buggy input. Undefines one small
    /// and one large macro whose expansions are still pending.
    pub const SELF_UNDEF: u32 = 2;
}

/// Definitions at or below this size free through `free_small_def`.
const SMALL_DEF: u64 = 64;
/// Sentinel word stamped at the start of every definition.
const SENTINEL: u64 = 0x6d34_6d34_6d34;
/// Requests between the undefine and the pending expansions resuming.
const RESUME_DELAY: u64 = 30;

#[derive(Clone)]
struct MacroDef {
    text: Addr,
    len: u64,
}

/// The M4 miniature.
#[derive(Clone, Default)]
pub struct M4 {
    macros: Vec<Option<MacroDef>>, // slot per macro id (mod table size)
    /// Expansions holding (dangling after the bug) definition pointers,
    /// due to resume at the given request count.
    pending: Vec<(MacroDef, u64)>,
    req_counter: u64,
}

const TABLE: usize = 16;

impl M4 {
    fn define(&mut self, ctx: &mut ProcessCtx, id: usize, len: u64) -> Result<(), Fault> {
        let len = len.clamp(16, 4096);
        if let Some(old) = self.macros[id].take() {
            Self::free_def(ctx, &old)?;
        }
        let text = ctx.call("define_macro", |ctx| {
            let t = ctx.call("xstrdup", |ctx| ctx.malloc(len))?;
            ctx.write_u64(t, SENTINEL)?;
            ctx.fill(t.offset(8), len - 8, b'd')?;
            Ok(t)
        })?;
        self.macros[id] = Some(MacroDef { text, len });
        Ok(())
    }

    /// The two deallocation paths of the real implementation.
    fn free_def(ctx: &mut ProcessCtx, def: &MacroDef) -> Result<(), Fault> {
        if def.len <= SMALL_DEF {
            ctx.call("free_small_def", |ctx| ctx.free(def.text))
        } else {
            ctx.call("free_token_data", |ctx| ctx.free(def.text))
        }
    }

    fn expand(ctx: &mut ProcessCtx, def: &MacroDef) -> Result<u64, Fault> {
        ctx.call("expand_macro", |ctx| {
            let s = ctx.read_u64(def.text)?;
            ctx.check(s == SENTINEL, "macro definition sentinel mismatch")?;
            let body = ctx.read_bytes(def.text.offset(8), (def.len - 8).min(128))?;
            Ok(body.len() as u64)
        })
    }
}

impl App for M4 {
    fn name(&self) -> &'static str {
        "m4"
    }

    fn init(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        self.macros = vec![None; TABLE];
        // Slot 0: a small macro; slot 1: a large one.
        self.define(ctx, 0, 48)?;
        self.define(ctx, 1, 512)?;
        Ok(())
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        // Tokenizing/rescanning cost per input line.
        ctx.clock.advance(30_000);
        self.req_counter += 1;
        // Pending (dangling) expansions resume first.
        let due: Vec<MacroDef> = {
            let now = self.req_counter;
            let (ready, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
                .into_iter()
                .partition(|(_, t)| now >= *t);
            self.pending = rest;
            ready.into_iter().map(|(d, _)| d).collect()
        };
        for def in due {
            M4::expand(ctx, &def)?;
        }
        match input.op {
            ops::DEFINE => {
                let id = (input.a as usize) % TABLE;
                self.define(ctx, id, input.b)?;
                Ok(Response::bytes(8))
            }
            ops::SELF_UNDEF => ctx.call("macro_undefine", |ctx| {
                // BUG: the expansion stack still references both
                // definitions when they are freed.
                for id in [0usize, 1] {
                    if let Some(def) = self.macros[id].take() {
                        M4::free_def(ctx, &def)?;
                        self.pending
                            .push((def, self.req_counter + RESUME_DELAY * (id as u64 + 1)));
                    }
                }
                Ok(Response::bytes(4))
            }),
            _ => {
                let id = (input.a as usize) % TABLE;
                match self.macros[id].clone() {
                    Some(def) => {
                        let n = M4::expand(ctx, &def)?;
                        Ok(Response::bytes(n))
                    }
                    None => Ok(Response::bytes(0)),
                }
            }
        }
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

/// Builds the M4 workload: defines and expansions; triggers undefine the
/// two init macros while their expansions are pending.
pub fn workload(spec: &WorkloadSpec) -> Vec<Input> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    (0..spec.n)
        .map(|i| {
            if spec.triggers.contains(&i) {
                return InputBuilder::op(ops::SELF_UNDEF)
                    .gap_us(1_000)
                    .buggy()
                    .build();
            }
            if rng.random_ratio(1, 4) {
                // Defines use slots 2.. so the init macros survive.
                InputBuilder::op(ops::DEFINE)
                    .a(rng.random_range(2u64..TABLE as u64))
                    .b(rng.random_range(16u64..1024))
                    .gap_us(1_000)
                    .build()
            } else {
                InputBuilder::op(ops::EXPAND)
                    .a(rng.random_range(2u64..TABLE as u64))
                    .gap_us(1_000)
                    .build()
            }
        })
        .collect()
}

/// Paper Table 2 row: M4 1.4.4, dangling pointer read, 17K LOC, macro
/// processor.
pub fn spec() -> AppSpec {
    AppSpec {
        key: "m4",
        display: "M4",
        version: "1.4.4",
        loc: "17K",
        description: "macro processor",
        bug_desc: "dangling pointer read",
        expect_bug: BugType::DanglingRead,
        expect_sites: 2,
        build: || Box::new(M4::default()),
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::ExtAllocator;
    use fa_proc::Process;

    fn launch() -> Process {
        let mut ctx = ProcessCtx::new(1 << 28);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        Process::launch(Box::new(M4::default()), ctx).unwrap()
    }

    #[test]
    fn define_expand_cycles_are_clean() {
        let mut p = launch();
        for input in workload(&WorkloadSpec::new(200, &[])) {
            assert!(p.feed(input).is_ok());
        }
    }

    #[test]
    fn undefine_while_expanding_fails_later() {
        let mut p = launch();
        let w = workload(&WorkloadSpec::new(200, &[50]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        let failed_at = failed_at.expect("dangling read must fail");
        assert!(
            failed_at >= 50 + RESUME_DELAY as usize - 1,
            "failure is delayed past the trigger, got {failed_at}"
        );
    }

    #[test]
    fn both_free_paths_are_exercised() {
        // Small and large macros free through different wrappers.
        let mut p = launch();
        let input = InputBuilder::op(ops::DEFINE).a(0).b(32).build();
        assert!(p.feed(input).is_ok()); // redefine frees the small path
        let input = InputBuilder::op(ops::DEFINE).a(1).b(512).build();
        assert!(p.feed(input).is_ok()); // redefine frees the large path
    }
}
