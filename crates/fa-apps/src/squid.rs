//! Squid 2.3 — the `ftpBuildTitleUrl` buffer overflow.
//!
//! The real bug: when building the title URL for an FTP listing, Squid
//! under-counts the escaped length of the host/path, so the `sprintf`
//! into the allocated buffer overflows. Here the escaping doubles `~`
//! characters while the length estimate counts them once; the overflow
//! tramples the boundary tag of the adjacent connection buffer and the
//! allocator aborts when that buffer is freed — the same request, which is
//! why Squid's error-propagation distance (and recovery time) is short
//! (paper §7.3).

use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use fa_allocext::BugType;

use crate::registry::{AppSpec, WorkloadSpec};

/// Request ops.
pub mod ops {
    /// Plain HTTP fetch of `a` bytes.
    pub const HTTP: u32 = 0;
    /// FTP listing for the host in `text` — the buggy path.
    pub const FTP: u32 = 1;
}

/// The Squid miniature.
#[derive(Clone, Default)]
pub struct Squid;

impl Squid {
    fn http_fetch(ctx: &mut ProcessCtx, size: u64) -> Result<Response, Fault> {
        ctx.call("clientProcessRequest", |ctx| {
            let size = size.clamp(1024, 65_536);
            let buf = ctx.call("memAllocate", |ctx| ctx.malloc(size))?;
            ctx.fill(buf, size, 0x20)?;
            ctx.free(buf)?;
            Ok(Response::bytes(size))
        })
    }

    /// Escapes `~` as `%7E`-style doubling (modeled as two bytes).
    fn escaped_len(host: &str) -> u64 {
        host.bytes().map(|b| if b == b'~' { 2 } else { 1 }).sum()
    }

    fn ftp_listing(ctx: &mut ProcessCtx, host: &str) -> Result<Response, Fault> {
        ctx.call("ftpProcessRequest", |ctx| {
            // BUG (length underestimation): the estimate counts each
            // character once, but escaping expands `~`.
            let estimate = 8 + host.len() as u64;
            let title = ctx.call("ftpBuildTitleUrl", |ctx| ctx.malloc(estimate))?;
            let conn = ctx.call("ftpConnAlloc", |ctx| ctx.malloc(256))?;
            // Write "ftp://" + escaped(host) + "/" — may exceed `estimate`.
            let actual = 7 + Squid::escaped_len(host);
            ctx.fill(title, actual, b'u')?;
            // Use the connection buffer, then release it: freeing it
            // validates the boundary tag the overflow may have trampled.
            ctx.fill(conn, 256, 0x31)?;
            ctx.free(conn)?;
            ctx.free(title)?;
            Ok(Response::bytes(4096))
        })
    }
}

/// Virtual request-processing cost per request, ns.
const REQ_COST_NS: u64 = 70_000;

impl App for Squid {
    fn name(&self) -> &'static str {
        "squid"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.clock.advance(REQ_COST_NS);
        match input.op {
            ops::FTP => Squid::ftp_listing(ctx, &input.text),
            _ => Squid::http_fetch(ctx, input.a),
        }
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

/// Builds the Squid workload: mostly HTTP fetches, occasional benign FTP
/// listings, and trigger inputs with a `~`-laden host.
pub fn workload(spec: &WorkloadSpec) -> Vec<Input> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    (0..spec.n)
        .map(|i| {
            if spec.triggers.contains(&i) {
                // 24 tildes: 24 bytes of overflow past the estimate.
                let host = format!("{}.example.org", "~".repeat(24));
                return InputBuilder::op(ops::FTP)
                    .text(host)
                    .gap_us(1_500)
                    .buggy()
                    .build();
            }
            if rng.random_ratio(1, 10) {
                InputBuilder::op(ops::FTP)
                    .text("ftp.mirror.net")
                    .gap_us(1_500)
                    .build()
            } else {
                InputBuilder::op(ops::HTTP)
                    .a(rng.random_range(4_096u64..32_768))
                    .gap_us(1_500)
                    .build()
            }
        })
        .collect()
}

/// Paper Table 2 row: Squid 2.3, buffer overflow, 93K LOC, proxy cache.
pub fn spec() -> AppSpec {
    AppSpec {
        key: "squid",
        display: "Squid",
        version: "2.3",
        loc: "93K",
        description: "proxy cache",
        bug_desc: "buffer overflow",
        expect_bug: BugType::BufferOverflow,
        expect_sites: 1,
        build: || Box::new(Squid),
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::ExtAllocator;
    use fa_proc::Process;

    fn launch() -> Process {
        let mut ctx = ProcessCtx::new(1 << 28);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        Process::launch(Box::new(Squid), ctx).unwrap()
    }

    #[test]
    fn normal_and_benign_ftp_are_clean() {
        let mut p = launch();
        for input in workload(&WorkloadSpec::new(200, &[])) {
            assert!(p.feed(input).is_ok());
        }
    }

    #[test]
    fn tilde_host_overflow_crashes_same_request() {
        let mut p = launch();
        let w = workload(&WorkloadSpec::new(100, &[50]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        assert_eq!(failed_at, Some(50), "short error propagation distance");
        assert_eq!(p.failure.as_ref().unwrap().fault.class(), "heap-corruption");
    }

    #[test]
    fn escape_math() {
        assert_eq!(Squid::escaped_len("abc"), 3);
        assert_eq!(Squid::escaped_len("~~"), 4);
    }
}
