//! CVS 1.11.4 — the double free in the server's error path.
//!
//! The real bug (CVE-2003-0015-adjacent family): an error path in the
//! server frees a buffer that the normal cleanup path frees again. Here
//! `serve_request` allocates a request buffer, `buf_free` releases it, and
//! the malformed-request error path calls the cleanup a second time.

use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use fa_allocext::BugType;

use crate::registry::{AppSpec, WorkloadSpec};

/// Request ops.
pub mod ops {
    /// Check out the file named by `a` (mod file count).
    pub const CHECKOUT: u32 = 0;
    /// Commit `data` to the file named by `a`.
    pub const COMMIT: u32 = 1;
    /// A malformed request — takes the buggy error path.
    pub const MALFORMED: u32 = 2;
}

const FILES: u64 = 8;

/// The CVS server miniature.
#[derive(Clone, Default)]
pub struct Cvs;

impl Cvs {
    fn file_name(i: u64) -> String {
        format!("repo/src/file{}.c", i % FILES)
    }

    fn checkout(ctx: &mut ProcessCtx, file: u64) -> Result<Response, Fault> {
        ctx.call("serve_co", |ctx| {
            let name = Cvs::file_name(file);
            ctx.files.seek(&name, 0);
            let data = ctx.files.read(&name, 1 << 16);
            let buf = ctx.call("buf_alloc", |ctx| ctx.malloc(data.len().max(64) as u64))?;
            ctx.write_bytes(buf, &data)?;
            ctx.call("buf_free", |ctx| ctx.free(buf))?;
            Ok(Response::bytes(data.len() as u64))
        })
    }

    fn commit(ctx: &mut ProcessCtx, file: u64, data: &[u8]) -> Result<Response, Fault> {
        ctx.call("serve_ci", |ctx| {
            let name = Cvs::file_name(file);
            let buf = ctx.call("buf_alloc", |ctx| ctx.malloc(data.len().max(64) as u64))?;
            ctx.write_bytes(buf, data)?;
            let out = ctx.read_bytes(buf, data.len() as u64)?;
            ctx.files.seek(&name, usize::MAX); // append
            let pos = ctx.files.len(&name).unwrap_or(0);
            ctx.files.seek(&name, pos);
            ctx.files.write(&name, &out);
            ctx.call("buf_free", |ctx| ctx.free(buf))?;
            Ok(Response::bytes(out.len() as u64))
        })
    }

    fn malformed(ctx: &mut ProcessCtx) -> Result<Response, Fault> {
        ctx.call("serve_request", |ctx| {
            let buf = ctx.call("buf_alloc", |ctx| ctx.malloc(512))?;
            ctx.fill(buf, 512, 0x3f)?;
            // Normal cleanup releases the buffer...
            ctx.call("buf_free", |ctx| ctx.free(buf))?;
            // ...and the error path (BUG) releases it again.
            ctx.call("error_exit", |ctx| {
                ctx.call("buf_free", |ctx| ctx.free(buf))
            })?;
            Ok(Response::bytes(0))
        })
    }
}

impl App for Cvs {
    fn name(&self) -> &'static str {
        "cvs"
    }

    fn init(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        for i in 0..FILES {
            let name = Cvs::file_name(i);
            ctx.files.open(&name);
            let body = format!("/* file {i} */\n").repeat(200);
            ctx.files.write(&name, body.as_bytes());
        }
        Ok(())
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        // Request parsing + rcs bookkeeping cost.
        ctx.clock.advance(90_000);
        match input.op {
            ops::COMMIT => Cvs::commit(ctx, input.a, &input.data),
            ops::MALFORMED => Cvs::malformed(ctx),
            _ => Cvs::checkout(ctx, input.a),
        }
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

/// Builds the CVS workload: checkouts and commits with occasional
/// malformed requests at the trigger indices.
pub fn workload(spec: &WorkloadSpec) -> Vec<Input> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    (0..spec.n)
        .map(|i| {
            if spec.triggers.contains(&i) {
                return InputBuilder::op(ops::MALFORMED)
                    .gap_us(2_500)
                    .buggy()
                    .build();
            }
            if rng.random_ratio(1, 4) {
                InputBuilder::op(ops::COMMIT)
                    .a(rng.random_range(0u64..FILES))
                    .data(vec![b'x'; rng.random_range(64usize..2048)])
                    .gap_us(2_500)
                    .build()
            } else {
                InputBuilder::op(ops::CHECKOUT)
                    .a(rng.random_range(0u64..FILES))
                    .gap_us(2_500)
                    .build()
            }
        })
        .collect()
}

/// Paper Table 2 row: CVS 1.11.4, double free, 114K LOC, version control.
pub fn spec() -> AppSpec {
    AppSpec {
        key: "cvs",
        display: "CVS",
        version: "1.11.4",
        loc: "114K",
        description: "version control",
        bug_desc: "double free",
        expect_bug: BugType::DoubleFree,
        expect_sites: 1,
        build: || Box::new(Cvs),
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::ExtAllocator;
    use fa_proc::Process;

    fn launch() -> Process {
        let mut ctx = ProcessCtx::new(1 << 28);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        Process::launch(Box::new(Cvs), ctx).unwrap()
    }

    #[test]
    fn checkouts_and_commits_are_clean() {
        let mut p = launch();
        for input in workload(&WorkloadSpec::new(150, &[])) {
            assert!(p.feed(input).is_ok());
        }
    }

    #[test]
    fn commit_grows_repository_file() {
        let mut p = launch();
        let before = p.ctx.files.len(&Cvs::file_name(1)).unwrap();
        let input = InputBuilder::op(ops::COMMIT)
            .a(1)
            .data(vec![1; 100])
            .build();
        assert!(p.feed(input).is_ok());
        assert_eq!(p.ctx.files.len(&Cvs::file_name(1)).unwrap(), before + 100);
    }

    #[test]
    fn malformed_request_double_frees() {
        let mut p = launch();
        let w = workload(&WorkloadSpec::new(60, &[30]));
        let mut failed_at = None;
        for (i, input) in w.into_iter().enumerate() {
            if !p.feed(input).is_ok() {
                failed_at = Some(i);
                break;
            }
        }
        assert_eq!(failed_at, Some(30));
        let class = p.failure.as_ref().unwrap().fault.class();
        assert!(
            class == "invalid-free" || class == "heap-corruption",
            "got {class}"
        );
    }
}
