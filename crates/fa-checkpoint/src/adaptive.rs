//! The adaptive checkpoint-interval controller.
//!
//! "Instead of using fixed checkpointing intervals as in Rx, First-Aid
//! dynamically adjusts the checkpointing intervals ... by monitoring the
//! copy-on-write (COW) page rate ... If the runtime overhead is higher
//! than the threshold T_overhead specified by the user, First-Aid
//! gradually increases the checkpointing interval ... once the checkpoint
//! interval reaches the user-specified maximal interval T_checkpoint,
//! First-Aid stops increasing it" (paper §3).

/// Configuration of the adaptive controller.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Initial (and minimum) checkpoint interval in virtual ns. The
    /// paper's experiments use 200 ms.
    pub base_interval_ns: u64,
    /// `T_checkpoint`: the maximum interval the controller may reach.
    pub max_interval_ns: u64,
    /// `T_overhead`: the checkpointing overhead fraction the user is
    /// willing to pay (copy cost / interval).
    pub overhead_target: f64,
    /// Virtual cost of replicating one COW page, in ns.
    pub page_copy_ns: u64,
    /// Fixed virtual cost of taking one checkpoint, in ns.
    pub checkpoint_base_ns: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            base_interval_ns: 200_000_000,  // 200 ms
            max_interval_ns: 3_200_000_000, // 3.2 s
            overhead_target: 0.05,          // 5 %
            page_copy_ns: 10_000,
            checkpoint_base_ns: 60_000, // fork-like operation
        }
    }
}

/// The controller state: the current interval, adjusted per checkpoint.
#[derive(Clone, Debug)]
pub struct AdaptiveInterval {
    config: AdaptiveConfig,
    interval_ns: u64,
}

impl AdaptiveInterval {
    /// Creates a controller at the base interval.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveInterval {
            interval_ns: config.base_interval_ns,
            config,
        }
    }

    /// Returns the current checkpoint interval in virtual ns.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Returns the configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Returns the virtual cost of a checkpoint that found `dirty_pages`
    /// COW-replicated pages.
    pub fn checkpoint_cost_ns(&self, dirty_pages: usize) -> u64 {
        self.config.checkpoint_base_ns + dirty_pages as u64 * self.config.page_copy_ns
    }

    /// Feeds the controller one completed interval; adjusts the interval
    /// for the next one.
    ///
    /// Doubling on overshoot / halving on deep undershoot gives the
    /// "gradual" adjustment of the paper without oscillating.
    pub fn observe(&mut self, dirty_pages: usize) {
        let cost = self.checkpoint_cost_ns(dirty_pages) as f64;
        let overhead = cost / self.interval_ns as f64;
        if overhead > self.config.overhead_target {
            self.interval_ns = (self.interval_ns * 2).min(self.config.max_interval_ns);
        } else if overhead < self.config.overhead_target / 4.0
            && self.interval_ns > self.config.base_interval_ns
        {
            self.interval_ns = (self.interval_ns / 2).max(self.config.base_interval_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(target: f64) -> AdaptiveInterval {
        AdaptiveInterval::new(AdaptiveConfig {
            base_interval_ns: 200_000_000,
            max_interval_ns: 1_600_000_000,
            overhead_target: target,
            page_copy_ns: 3_000,
            checkpoint_base_ns: 60_000,
        })
    }

    #[test]
    fn small_working_set_keeps_base_interval() {
        let mut c = controller(0.05);
        for _ in 0..10 {
            c.observe(20); // 60 µs + 60 µs per 200 ms ≈ 0.06 %
        }
        assert_eq!(c.interval_ns(), 200_000_000);
    }

    #[test]
    fn heavy_cow_rate_widens_interval_to_cap() {
        let mut c = controller(0.05);
        // 100_000 pages * 3 µs = 300 ms of copy cost: over target even at
        // the maximum interval, so the controller must stop at the cap.
        for _ in 0..10 {
            c.observe(100_000);
        }
        assert_eq!(c.interval_ns(), 1_600_000_000, "must stop at T_checkpoint");
    }

    #[test]
    fn interval_shrinks_back_when_load_drops() {
        let mut c = controller(0.05);
        for _ in 0..4 {
            c.observe(10_000);
        }
        let widened = c.interval_ns();
        assert!(widened > 200_000_000);
        for _ in 0..10 {
            c.observe(1);
        }
        assert_eq!(c.interval_ns(), 200_000_000);
        assert!(c.interval_ns() < widened);
    }

    #[test]
    fn cost_model_scales_with_pages() {
        let c = controller(0.05);
        assert_eq!(c.checkpoint_cost_ns(0), 60_000);
        assert_eq!(c.checkpoint_cost_ns(100), 60_000 + 300_000);
    }
}
