//! Lightweight checkpointing and rollback (paper §3).
//!
//! First-Aid "takes in-memory checkpoints using a fork-like operation and
//! rolls back the program by reinstating the saved task state", leveraging
//! the Rx/Flashback runtime. This crate reproduces that component over the
//! simulated process substrate:
//!
//! * [`CheckpointManager`] keeps a bounded ring of process snapshots
//!   ([`fa_proc::ProcSnapshot`] — COW memory snapshot, cloned heap and
//!   allocator-extension state, app state, file table, input cursor);
//! * checkpoint *cost* is charged in virtual time proportional to the
//!   pages dirtied in the elapsed interval, modelling fork-COW page
//!   replication — the checkpointing overhead of paper Fig. 6;
//! * the **adaptive interval controller** monitors the COW page rate and
//!   widens the checkpoint interval when the estimated overhead exceeds
//!   the user's target `T_overhead`, up to `T_checkpoint` (paper §3) —
//!   this is what keeps checkpoint space overhead per *second* flat for
//!   large-working-set programs (paper Table 7).

pub mod adaptive;
pub mod manager;

pub use adaptive::{AdaptiveConfig, AdaptiveInterval};
pub use manager::{Checkpoint, CheckpointManager, CheckpointStats};
