//! The checkpoint ring and rollback.

use std::collections::VecDeque;

use fa_proc::{ProcSnapshot, Process};

use crate::adaptive::{AdaptiveConfig, AdaptiveInterval};

/// One retained checkpoint.
pub struct Checkpoint {
    /// Monotonic checkpoint id.
    pub id: u64,
    /// Virtual time at which it was taken.
    pub at_ns: u64,
    /// The process snapshot.
    pub snap: ProcSnapshot,
    /// Pages dirtied since the previous checkpoint (its COW cost).
    pub dirty_pages: usize,
    /// Input-log cursor at checkpoint time.
    pub cursor: usize,
    /// Structural checksum of `snap` recorded at checkpoint time.
    /// `verify()` recomputes the digest; a mismatch means the stored
    /// snapshot rotted (simulated storage corruption) and the
    /// checkpoint must not be used as a rollback target.
    pub checksum: u64,
}

impl Checkpoint {
    /// True if the stored snapshot still matches its recorded checksum.
    pub fn verify(&self) -> bool {
        self.snap.digest() == self.checksum
    }
}

/// Aggregate checkpointing statistics (paper Table 7 inputs).
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointStats {
    /// Checkpoints taken.
    pub taken: u64,
    /// Total pages dirtied across all intervals.
    pub total_dirty_pages: u64,
    /// Total virtual time spent taking checkpoints.
    pub total_cost_ns: u64,
    /// Virtual time of the first checkpoint.
    pub first_at_ns: u64,
    /// Virtual time of the most recent checkpoint.
    pub last_at_ns: u64,
}

impl CheckpointStats {
    /// Average megabytes of COW pages per checkpoint.
    pub fn mb_per_checkpoint(&self) -> f64 {
        if self.taken == 0 {
            return 0.0;
        }
        (self.total_dirty_pages as f64 * 4096.0) / (self.taken as f64 * 1_048_576.0)
    }

    /// Average megabytes of checkpoint data per virtual second.
    pub fn mb_per_second(&self) -> f64 {
        let span = self.last_at_ns.saturating_sub(self.first_at_ns);
        if span == 0 {
            return 0.0;
        }
        (self.total_dirty_pages as f64 * 4096.0 / 1_048_576.0) / (span as f64 / 1e9)
    }
}

/// Periodic checkpointing with a bounded history ring.
pub struct CheckpointManager {
    ring: VecDeque<Checkpoint>,
    max_keep: usize,
    next_id: u64,
    controller: AdaptiveInterval,
    next_due_ns: u64,
    stats: CheckpointStats,
}

impl CheckpointManager {
    /// Creates a manager keeping up to `max_keep` checkpoints.
    pub fn new(config: AdaptiveConfig, max_keep: usize) -> Self {
        let controller = AdaptiveInterval::new(config);
        CheckpointManager {
            ring: VecDeque::new(),
            max_keep,
            next_id: 0,
            next_due_ns: controller.interval_ns(),
            controller,
            stats: CheckpointStats::default(),
        }
    }

    /// Takes a checkpoint if the process clock has passed the due time.
    ///
    /// Charges the COW replication cost of the elapsed interval to the
    /// process clock and feeds the adaptive controller.
    pub fn maybe_checkpoint(&mut self, process: &mut Process) -> Option<u64> {
        if process.ctx.clock.now() < self.next_due_ns {
            return None;
        }
        let id = self.force_checkpoint(process);
        Some(id)
    }

    /// Takes a checkpoint unconditionally.
    pub fn force_checkpoint(&mut self, process: &mut Process) -> u64 {
        let dirty = process.ctx.mem.take_dirty_pages();
        let cost = self.controller.checkpoint_cost_ns(dirty);
        process.ctx.clock.advance(cost);
        self.controller.observe(dirty);
        let id = self.next_id;
        self.next_id += 1;
        let at_ns = process.ctx.clock.now();
        let snap = process.snapshot();
        let checksum = snap.digest();
        self.ring.push_back(Checkpoint {
            id,
            at_ns,
            snap,
            dirty_pages: dirty,
            cursor: process.cursor(),
            checksum,
        });
        while self.ring.len() > self.max_keep {
            self.ring.pop_front();
        }
        self.stats.taken += 1;
        self.stats.total_dirty_pages += dirty as u64;
        self.stats.total_cost_ns += cost;
        if self.stats.taken == 1 {
            self.stats.first_at_ns = at_ns;
        }
        self.stats.last_at_ns = at_ns;
        self.next_due_ns = at_ns + self.controller.interval_ns();
        id
    }

    /// Returns the retained checkpoints, oldest first.
    pub fn checkpoints(&self) -> impl DoubleEndedIterator<Item = &Checkpoint> {
        self.ring.iter()
    }

    /// Returns the checkpoint with the given id, if retained.
    pub fn get(&self, id: u64) -> Option<&Checkpoint> {
        self.ring.iter().find(|c| c.id == id)
    }

    /// Returns the `k`-th most recent checkpoint (0 = newest).
    pub fn nth_newest(&self, k: usize) -> Option<&Checkpoint> {
        let len = self.ring.len();
        len.checked_sub(k + 1).and_then(|i| self.ring.get(i))
    }

    /// Returns the oldest retained checkpoint.
    pub fn oldest(&self) -> Option<&Checkpoint> {
        self.ring.front()
    }

    /// Flips the stored checksum of the given checkpoint, simulating
    /// storage rot. Returns `false` if the id is not retained. Test
    /// and fault-injection hook.
    pub fn corrupt(&mut self, id: u64) -> bool {
        match self.ring.iter_mut().find(|c| c.id == id) {
            Some(c) => {
                c.checksum ^= 0xdead_beef_dead_beef;
                true
            }
            None => false,
        }
    }

    /// Corrupts the newest retained checkpoint (the usual victim of a
    /// torn write: the one still in flight). Returns its id.
    pub fn corrupt_newest(&mut self) -> Option<u64> {
        let id = self.ring.back()?.id;
        self.corrupt(id);
        Some(id)
    }

    /// Flips a byte of the given checkpoint's *snapshot data* (in-page
    /// rot, as opposed to [`Self::corrupt`]'s checksum rot), leaving the
    /// recorded checksum untouched so only a content-aware digest can
    /// notice. Returns `false` if the id is not retained or the snapshot
    /// holds no page data. Test and fault-injection hook.
    pub fn corrupt_data(&mut self, id: u64) -> bool {
        match self.ring.iter_mut().find(|c| c.id == id) {
            Some(c) => c.snap.rot_page(),
            None => false,
        }
    }

    /// Removes every checkpoint whose snapshot fails verification and
    /// returns their ids (oldest first). Recovery calls this before
    /// choosing a rollback target so diagnosis only ever sees intact
    /// checkpoints — falling back to the next-older one on mismatch.
    pub fn sweep_corrupt(&mut self) -> Vec<u64> {
        let bad: Vec<u64> = self
            .ring
            .iter()
            .filter(|c| !c.verify())
            .map(|c| c.id)
            .collect();
        if !bad.is_empty() {
            self.ring.retain(|c| c.verify());
        }
        bad
    }

    /// Returns the number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` if no checkpoints are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Rolls the process back to the given checkpoint, charging a restore
    /// cost proportional to the snapshot's footprint.
    pub fn rollback_to(&self, process: &mut Process, id: u64) -> bool {
        self.restore_into(process, id)
    }

    /// Restores a trial context from checkpoint `id` without touching the
    /// ring: the same checksum verification, restore, fixed rollback cost,
    /// and dirty-page reset as [`Self::rollback_to`], applied to any
    /// process — the supervised one or a pooled/forked trial context. This
    /// is the checkpoint entry point of the fa-exec trial substrate.
    pub fn restore_into(&self, trial: &mut Process, id: u64) -> bool {
        let Some(ckpt) = self.ring.iter().find(|c| c.id == id) else {
            return false;
        };
        // Defense in depth: never restore from a snapshot that fails
        // its checksum, even if the caller skipped `sweep_corrupt()`.
        if !ckpt.verify() {
            return false;
        }
        trial.restore(&ckpt.snap);
        // Reinstating the saved task state: charge a fixed cost plus a
        // per-page share for the page-table swap.
        trial.ctx.clock.advance(80_000);
        trial.ctx.mem.take_dirty_pages();
        true
    }

    /// Drops all checkpoints newer than `id` (after recovery commits to a
    /// rollback point, the discarded future is invalid). Returns the
    /// pruned ids, oldest first, so a journaling supervisor can record
    /// exactly what was discarded.
    pub fn truncate_after(&mut self, id: u64) -> Vec<u64> {
        let pruned: Vec<u64> = self
            .ring
            .iter()
            .filter(|c| c.id > id)
            .map(|c| c.id)
            .collect();
        self.ring.retain(|c| c.id <= id);
        if let Some(last) = self.ring.back() {
            self.next_id = last.id + 1;
        }
        pruned
    }

    /// Returns the current checkpoint interval.
    pub fn interval_ns(&self) -> u64 {
        self.controller.interval_ns()
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// Resets the due time relative to the process clock (after recovery,
    /// so the next checkpoint is not immediately due).
    pub fn rearm(&mut self, process: &Process) {
        self.next_due_ns = process.ctx.clock.now() + self.controller.interval_ns();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};

    /// Touches `input.a` bytes of a rolling buffer each request.
    #[derive(Clone, Default)]
    struct Toucher {
        bufs: Vec<fa_mem::Addr>,
    }

    impl App for Toucher {
        fn name(&self) -> &'static str {
            "toucher"
        }

        fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
            ctx.call("touch", |ctx| {
                let p = ctx.malloc(input.a.max(8))?;
                ctx.fill(p, input.a.max(8), 0x33)?;
                self.bufs.push(p);
                if self.bufs.len() > 4 {
                    let victim = self.bufs.remove(0);
                    ctx.free(victim)?;
                }
                Ok(Response::bytes(input.a))
            })
        }

        fn clone_app(&self) -> BoxedApp {
            Box::new(self.clone())
        }
    }

    fn process() -> Process {
        Process::launch(Box::new(Toucher::default()), ProcessCtx::new(1 << 26)).unwrap()
    }

    fn config() -> AdaptiveConfig {
        AdaptiveConfig {
            base_interval_ns: 1_000_000, // 1 ms for fast tests
            max_interval_ns: 8_000_000,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn checkpoints_fire_on_interval() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        let mut taken = 0;
        for i in 0..200 {
            p.feed(InputBuilder::op(0).a(256).gap_us(20).build());
            if mgr.maybe_checkpoint(&mut p).is_some() {
                taken += 1;
            }
            let _ = i;
        }
        assert!(taken >= 2, "expected several checkpoints, got {taken}");
        assert!(mgr.len() <= 10);
        assert_eq!(mgr.stats().taken, taken as u64);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut mgr = CheckpointManager::new(config(), 3);
        let mut p = process();
        for _ in 0..5 {
            p.feed(InputBuilder::op(0).a(64).build());
            mgr.force_checkpoint(&mut p);
        }
        assert_eq!(mgr.len(), 3);
        let ids: Vec<u64> = mgr.checkpoints().map(|c| c.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(mgr.nth_newest(0).unwrap().id, 4);
        assert_eq!(mgr.nth_newest(2).unwrap().id, 2);
        assert!(mgr.nth_newest(3).is_none());
    }

    #[test]
    fn rollback_restores_process_state() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        for _ in 0..3 {
            p.feed(InputBuilder::op(0).a(64).build());
        }
        let id = mgr.force_checkpoint(&mut p);
        let cursor_at_ckpt = p.cursor();
        for _ in 0..5 {
            p.feed(InputBuilder::op(0).a(64).build());
        }
        assert!(mgr.rollback_to(&mut p, id));
        assert_eq!(p.cursor(), cursor_at_ckpt);
        assert!(!mgr.rollback_to(&mut p, 999));
    }

    #[test]
    fn rollback_then_replay_is_deterministic() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        for i in 0..4 {
            p.feed(InputBuilder::op(0).a(64 + i).build());
        }
        let id = mgr.force_checkpoint(&mut p);
        for i in 0..6 {
            p.feed(InputBuilder::op(0).a(128 + i).build());
        }
        let heap_allocs_before = p.ctx.alloc().heap().stats().allocs;
        mgr.rollback_to(&mut p, id);
        while p.step().is_some() {}
        assert_eq!(
            p.ctx.alloc().heap().stats().allocs,
            heap_allocs_before,
            "replay must reproduce the identical allocation sequence"
        );
    }

    #[test]
    fn truncate_after_drops_newer() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        let mut ids = Vec::new();
        for _ in 0..4 {
            p.feed(InputBuilder::op(0).a(64).build());
            ids.push(mgr.force_checkpoint(&mut p));
        }
        let pruned = mgr.truncate_after(ids[1]);
        assert_eq!(pruned, vec![ids[2], ids[3]]);
        let remaining: Vec<u64> = mgr.checkpoints().map(|c| c.id).collect();
        assert_eq!(remaining, vec![ids[0], ids[1]]);
    }

    #[test]
    fn checkpoint_cost_charged_to_clock() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        p.feed(InputBuilder::op(0).a(8192).build());
        let t0 = p.ctx.clock.now();
        mgr.force_checkpoint(&mut p);
        assert!(p.ctx.clock.now() > t0, "checkpoint must cost virtual time");
    }

    #[test]
    fn fresh_checkpoints_verify_and_corruption_is_detected() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        p.feed(InputBuilder::op(0).a(64).build());
        let id = mgr.force_checkpoint(&mut p);
        assert!(mgr.get(id).unwrap().verify());

        assert!(mgr.corrupt(id));
        assert!(!mgr.get(id).unwrap().verify());
        assert!(
            !mgr.rollback_to(&mut p, id),
            "rollback must refuse a corrupt checkpoint"
        );
        assert!(!mgr.corrupt(999), "unknown id is reported");
    }

    #[test]
    fn in_page_rot_is_caught_by_content_digest() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        p.feed(InputBuilder::op(0).a(64).build());
        let id = mgr.force_checkpoint(&mut p);
        assert!(mgr.get(id).unwrap().verify());

        // Rot a byte inside a snapshotted page; the stored checksum is
        // untouched, so shape-only digests would miss this entirely.
        assert!(mgr.corrupt_data(id));
        assert!(!mgr.get(id).unwrap().verify());
        assert!(
            !mgr.rollback_to(&mut p, id),
            "rollback must refuse in-page rot"
        );
        assert_eq!(mgr.sweep_corrupt(), vec![id]);
        assert!(!mgr.corrupt_data(999), "unknown id is reported");
    }

    #[test]
    fn sweep_corrupt_falls_back_to_older_intact_checkpoints() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        let mut ids = Vec::new();
        for _ in 0..4 {
            p.feed(InputBuilder::op(0).a(64).build());
            ids.push(mgr.force_checkpoint(&mut p));
        }
        // The two newest rot; the two oldest stay intact.
        let newest = mgr.corrupt_newest().unwrap();
        assert_eq!(newest, ids[3]);
        assert!(mgr.corrupt(ids[2]));

        let swept = mgr.sweep_corrupt();
        assert_eq!(swept, vec![ids[2], ids[3]]);
        assert_eq!(mgr.len(), 2);
        assert_eq!(mgr.nth_newest(0).unwrap().id, ids[1]);
        assert_eq!(mgr.oldest().unwrap().id, ids[0]);
        assert!(mgr.rollback_to(&mut p, ids[1]), "fallback target works");
        assert!(mgr.sweep_corrupt().is_empty(), "idempotent once clean");
    }

    #[test]
    fn stats_report_mb_figures() {
        let mut mgr = CheckpointManager::new(config(), 10);
        let mut p = process();
        for _ in 0..20 {
            p.feed(InputBuilder::op(0).a(4096).gap_us(100).build());
            mgr.maybe_checkpoint(&mut p);
        }
        mgr.force_checkpoint(&mut p);
        let stats = mgr.stats();
        assert!(stats.taken >= 2);
        assert!(stats.mb_per_checkpoint() > 0.0);
        assert!(stats.mb_per_second() > 0.0);
    }
}
