//! Crash-safe supervision experiment: what a supervisor crash costs.
//!
//! For each application, a fleet runs over a journaled patch pool and
//! is then "killed" (dropped, in-memory state lost). The experiment
//! measures what a restarted supervisor pays to get back to the exact
//! pre-crash supervision state by replaying the journal, against the
//! cost of the cold start that built that state in the first place —
//! and verifies nothing was lost: the recovered pool must be
//! byte-identical (`export_state`) at the same patch epoch, and a
//! post-recovery workload must run already immunized.

use std::time::Instant;

use fa_apps::{fleet::sharded_stream, AppSpec};
use fa_fleet::{Fleet, FleetConfig};
use first_aid_core::PatchPool;
use serde::{Deserialize, Serialize};

/// One application's crash-recovery measurements.
#[derive(Debug, Serialize, Deserialize)]
pub struct CrashExperiment {
    /// Application display name.
    pub app: String,
    /// Patch-pool program key.
    pub program: String,
    /// Journal records surviving the run (post-compaction).
    pub journal_records: usize,
    /// Journal appends performed by the cold run.
    pub appends: u64,
    /// Patch epoch at the crash.
    pub pool_epoch: u64,
    /// Patch epoch after journal recovery.
    pub recovered_epoch: u64,
    /// Epochs the crash lost (the gate requires zero).
    pub lost_epochs: u64,
    /// Recovered pool state matches the pre-crash state byte for byte.
    pub reconverged: bool,
    /// Wall-clock cost of the cold fleet start (launch + immunization).
    pub cold_start_ns: u64,
    /// Wall-clock cost of journal recovery (reopen + replay + fleet
    /// re-construction).
    pub recovery_ns: u64,
    /// `recovery_ns / cold_start_ns`.
    pub recovery_fraction: f64,
    /// Failures in a post-recovery workload (zero: still immunized).
    pub warm_failures: usize,
}

/// Everything the crash bench writes to `results/crash.json`.
#[derive(Debug, Serialize, Deserialize)]
pub struct CrashReport {
    /// One row per application.
    pub experiments: Vec<CrashExperiment>,
}

/// Runs the crash-recovery measurement for one application.
///
/// # Panics
///
/// Panics if the fleet fails to diagnose during the cold run (there is
/// then no supervision state worth recovering).
pub fn run_case(
    spec: &AppSpec,
    workers: usize,
    per_shard: usize,
    trigger: usize,
) -> CrashExperiment {
    let dir = std::env::temp_dir().join(format!(
        "fa-crash-bench-{}-{}",
        spec.key,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let program = (spec.build)().name().to_owned();
    let config = FleetConfig {
        workers,
        // Paper-scale checkpointing: Apache's ~250-input error-
        // propagation distance needs the deep checkpoint horizon.
        runtime: crate::paper_config(),
        ..FleetConfig::default()
    };
    let shards: Vec<Vec<usize>> = (0..workers)
        .map(|w| if w == 0 { vec![trigger] } else { Vec::new() })
        .collect();

    // Cold start: an empty journal, a fresh fleet, one diagnosis.
    let t0 = Instant::now();
    let pool = PatchPool::journaled(&dir).expect("scratch journal dir");
    let fleet = Fleet::new(spec.build, config.clone()).with_pool(pool.clone());
    let r = fleet.run(sharded_stream(
        spec,
        &shards,
        per_shard,
        0xc0 + trigger as u64,
    ));
    let cold_start_ns = (t0.elapsed().as_nanos() as u64).max(1);
    assert!(r.patched >= 1, "{}: cold run must diagnose", spec.key);
    let pool_epoch = pool.epoch(&program);
    let export = pool.export_state(&program);
    let appends = pool.journal().expect("journaled pool").appends();
    drop(fleet);
    drop(pool); // the crash: every in-memory structure is gone

    // Recovery: reopen the journal, replay, rebuild the fleet.
    let t1 = Instant::now();
    let recovered = PatchPool::journaled(&dir).expect("journal reopens");
    let fleet = Fleet::new(spec.build, config).with_pool(recovered.clone());
    fleet.recover_from_journal();
    let recovery_ns = t1.elapsed().as_nanos() as u64;
    let journal_records = recovered.journal().expect("journaled pool").replay().len();
    let recovered_epoch = recovered.epoch(&program);
    let reconverged = recovered.export_state(&program) == export;

    // The recovered fleet serves a triggered workload already immunized.
    let warm = fleet.run(sharded_stream(
        spec,
        &shards,
        per_shard,
        0xd0 + trigger as u64,
    ));
    let _ = std::fs::remove_dir_all(&dir);

    CrashExperiment {
        app: spec.display.to_owned(),
        program,
        journal_records,
        appends,
        pool_epoch,
        recovered_epoch,
        lost_epochs: pool_epoch.saturating_sub(recovered_epoch),
        reconverged,
        cold_start_ns,
        recovery_ns,
        recovery_fraction: recovery_ns as f64 / cold_start_ns as f64,
        warm_failures: warm.failures,
    }
}

/// Renders one experiment row for the console.
pub fn render(exp: &CrashExperiment) -> String {
    format!(
        "{:<12} journal {:>3} rec ({:>4} appends)  epoch {}->{} lost {}  \
         cold {:>8.2}ms  recover {:>6.3}ms ({})  warm-failures {}{}",
        exp.app,
        exp.journal_records,
        exp.appends,
        exp.pool_epoch,
        exp.recovered_epoch,
        exp.lost_epochs,
        exp.cold_start_ns as f64 / 1e6,
        exp.recovery_ns as f64 / 1e6,
        crate::pct(exp.recovery_fraction),
        exp.warm_failures,
        if exp.reconverged {
            ""
        } else {
            "  STATE DIVERGED"
        },
    )
}

/// The CI gate: recovery must cost under 5% of a cold fleet start, lose
/// zero patch epochs, re-converge byte-identically, and leave the fleet
/// immunized. Returns human-readable violations (empty = pass).
pub fn check(report: &CrashReport) -> Vec<String> {
    let mut violations = Vec::new();
    for e in &report.experiments {
        if e.recovery_fraction >= 0.05 {
            violations.push(format!(
                "{}: journal recovery cost {} of a cold start (gate: < 5%)",
                e.app,
                crate::pct(e.recovery_fraction)
            ));
        }
        if e.lost_epochs > 0 {
            violations.push(format!(
                "{}: crash lost {} patch epoch(s) (gate: zero)",
                e.app, e.lost_epochs
            ));
        }
        if !e.reconverged {
            violations.push(format!(
                "{}: recovered pool state diverged from the pre-crash state",
                e.app
            ));
        }
        if e.warm_failures > 0 {
            violations.push(format!(
                "{}: {} failure(s) after recovery (gate: fleet stays immunized)",
                e.app, e.warm_failures
            ));
        }
    }
    violations
}
