//! Table 5: space overhead of the runtime patches.
//!
//! For padding patches the figure is the maximum memory simultaneously
//! occupied by padding; for delay-free patches it is the accumulated space
//! pinned by delay-freed objects (bounded by the 1 MB quarantine
//! threshold). The overheads are small because patches apply only to the
//! few objects whose call-sites match (paper §7.6.1).

use fa_apps::{AppSpec, WorkloadSpec};
use first_aid_core::{FirstAidRuntime, PatchPool, PreventiveChange};

use crate::paper_config;

/// One row of Table 5.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Application name.
    pub app: String,
    /// Final heap size in KiB.
    pub heap_kb: u64,
    /// "padding" or "delay free".
    pub patch_type: String,
    /// Patch space overhead in bytes.
    pub overhead_bytes: u64,
    /// Overhead / heap ratio.
    pub ratio: f64,
}

/// Runs one application with repeated bug triggers and measures the patch
/// space footprint.
pub fn run_app(spec: &AppSpec) -> Table5Row {
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch((spec.build)(), paper_config(), pool).unwrap();
    // Aggressive triggering after the first recovery, as in the paper's
    // Apache measurement.
    let triggers: Vec<usize> = (1..8).map(|k| 400 * k).collect();
    let w = (spec.workload)(&WorkloadSpec::new(3_200, &triggers));
    let _ = fa.run(w, None);

    let patch_type = fa
        .recoveries
        .first()
        .and_then(|r| r.patches.first())
        .map(|p| p.change)
        .unwrap_or(PreventiveChange::AddPadding);
    let heap_bytes = fa.process().ctx.alloc().heap().stats().heap_bytes;
    let overhead_bytes = fa.with_ext(|ext| match patch_type {
        PreventiveChange::AddPadding => ext.counters().max_padding_bytes,
        PreventiveChange::DelayFree => ext.quarantine().accumulated_bytes,
        PreventiveChange::FillZero => 0,
    });
    Table5Row {
        app: spec.display.to_owned(),
        heap_kb: heap_bytes / 1024,
        patch_type: match patch_type {
            PreventiveChange::AddPadding => "padding".into(),
            PreventiveChange::DelayFree => "delay free".into(),
            PreventiveChange::FillZero => "fill zero".into(),
        },
        overhead_bytes,
        ratio: overhead_bytes as f64 / heap_bytes.max(1) as f64,
    }
}

/// Runs the seven real-bug applications.
pub fn rows() -> Vec<Table5Row> {
    fa_apps::all_specs()
        .iter()
        .filter(|s| !s.key.starts_with("apache-"))
        .map(run_app)
        .collect()
}

/// Renders Table 5 in the paper's layout.
pub fn render(rows: &[Table5Row]) -> String {
    let mut out = String::from(
        "Table 5. The space overhead for patches.\n\
         Name     Heap size  Patch type   Space overhead  Ratio\n\
         \x20        (Kbytes)                (Bytes)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<10} {:<12} {:<15} {}\n",
            r.app,
            r.heap_kb,
            r.patch_type,
            r.overhead_bytes,
            crate::pct(r.ratio),
        ));
    }
    out
}
