//! Fleet immunization experiment: N workers, shared patch pool vs the
//! no-sharing ablation.
//!
//! A Fig. 4-style timeline per worker, but the variable is not the
//! recovery system — every worker runs full First-Aid — it is whether
//! the workers share one patch pool. With sharing, the first worker to
//! hit the bug pays the only diagnosis and the rest pick the patch up
//! from the pool; without sharing, every worker re-diagnoses the same
//! bug and the fleet throughput dips once per worker.

use fa_apps::AppSpec;
use fa_fleet::{Fleet, FleetConfig, FleetReport, PoolSharing};
use serde::Serialize;

use crate::paper_config;

/// Sampling window (250 ms, as in Fig. 4).
pub const WINDOW_NS: u64 = 250_000_000;

/// One application's shared-vs-ablation comparison.
#[derive(Debug, Serialize)]
pub struct FleetExperiment {
    /// Application display name.
    pub app: String,
    /// Fleet size.
    pub workers: usize,
    /// Inputs per worker shard.
    pub per_shard: usize,
    /// Shared-pool fleet run.
    pub shared: FleetReport,
    /// Per-worker-pool ablation run.
    pub per_worker: FleetReport,
}

fn config(workers: usize, sharing: PoolSharing) -> FleetConfig {
    FleetConfig {
        workers,
        sharing,
        runtime: paper_config(),
        window_ns: WINDOW_NS,
        ..FleetConfig::default()
    }
}

/// Runs the experiment for one application: the same periodic trigger
/// stream through a shared-pool fleet and a per-worker-pool fleet.
///
/// `stagger` offsets each worker's triggers; it must exceed the bug's
/// error-propagation distance for sharing to beat the ablation.
pub fn run_app(
    spec: &AppSpec,
    workers: usize,
    per_shard: usize,
    warmup: usize,
    period: usize,
    stagger: usize,
) -> FleetExperiment {
    let stream =
        || fa_apps::fleet::periodic_stream(spec, workers, per_shard, warmup, period, stagger, 42);
    let shared = Fleet::new(spec.build, config(workers, PoolSharing::Shared)).run(stream());
    let per_worker = Fleet::new(spec.build, config(workers, PoolSharing::PerWorker)).run(stream());
    FleetExperiment {
        app: spec.display.to_owned(),
        workers,
        per_shard,
        shared,
        per_worker,
    }
}

fn sparkline(points: &[(f64, f64)], max: f64) -> String {
    points
        .iter()
        .map(|&(_, v)| {
            const LEVELS: [char; 6] = [' ', '.', ':', '-', '=', '#'];
            LEVELS[((v / max) * 5.0).round() as usize]
        })
        .collect()
}

fn render_report(label: &str, report: &FleetReport, out: &mut String) {
    let max = report
        .workers
        .iter()
        .flat_map(|w| w.series.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    out.push_str(&format!("-- {label} --\n"));
    for w in &report.workers {
        let immunized = match w.immunized_at_ns {
            Some(ns) => format!("immunized at {:.2} s", ns as f64 / 1e9),
            None => "never immunized".to_owned(),
        };
        out.push_str(&format!(
            "worker {} |{}| {} failure(s), {} diagnosis(es), {} patch hit(s), {}\n",
            w.worker,
            sparkline(&w.series, max),
            w.failures,
            w.patched,
            w.patch_hits,
            immunized,
        ));
    }
    let immunity = match report.time_to_fleet_immunity_ns {
        Some(ns) => format!("{:.2} s", ns as f64 / 1e9),
        None => "never".to_owned(),
    };
    out.push_str(&format!(
        "fleet: mean {:.2} MB/s, {} stalled window(s), {} diagnoses, {} rollbacks, fleet immunity at {}\n",
        report.mean_mbps(),
        report.stall_windows(),
        report.patched,
        report.rollbacks,
        immunity,
    ));
}

/// Renders both runs as per-worker ASCII timelines plus the summary.
pub fn render(exp: &FleetExperiment) -> String {
    let mut out = format!(
        "Fleet immunization: {} x{} workers, {} inputs/worker\n",
        exp.app, exp.workers, exp.per_shard
    );
    render_report("shared pool", &exp.shared, &mut out);
    render_report("per-worker pools (ablation)", &exp.per_worker, &mut out);
    out
}
