//! Wall-clock performance benchmark and regression gate.
//!
//! Unlike the paper-table benches (which report *virtual* time from the
//! simulated clock), this module measures the real wall-clock cost of
//! the simulator itself — normal-run throughput per application, the
//! snapshot/restore hot path, and end-to-end diagnosis latency — plus
//! the deterministic virtual-time speedup of the parallel speculative
//! diagnosis scheduler. The numbers land in `results/perf.json`; CI
//! replays the measurements with `--check` and fails on regression
//! against the committed baseline.
//!
//! Two kinds of gate:
//!
//! * **Virtual time** is deterministic (it comes from the simulated
//!   clock), so the thresholds are tight: diagnosis must stay within
//!   25% of the baseline, and the parallel scheduler must keep a ≥2×
//!   virtual-time speedup over the sequential engine on Apache and
//!   Squid.
//! * **Wall-clock** numbers vary with the machine and load, so the
//!   thresholds are deliberately generous (throughput may drop to 35%
//!   of baseline, snapshot/restore may grow 2.5×) — they catch
//!   order-of-magnitude regressions like an accidentally quadratic hot
//!   path, not noise.

use std::time::Instant;

use fa_allocext::ExtAllocator;
use fa_apps::{all_specs, spec_by_key, AppSpec, WorkloadSpec};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager};
use fa_mem::{Addr, Perms, SimMemory, PAGE_SIZE};
use fa_proc::{Process, ProcessCtx};
use first_aid_core::{DiagnosisEngine, DiagnosisOutcome, EngineConfig, FaultPlan};
use serde::{Deserialize, Serialize};

/// Wave width used for the parallel diagnosis measurements.
pub const PARALLELISM: usize = 8;

/// Normal-run throughput of one application (no bug triggers).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppThroughput {
    /// Application key.
    pub app: String,
    /// Inputs fed.
    pub inputs: usize,
    /// Wall-clock time for the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Throughput in inputs per wall-clock second.
    pub inputs_per_sec: f64,
}

/// Wall-clock cost of the checkpoint hot path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SnapshotCost {
    /// Measurement cycles averaged over.
    pub cycles: usize,
    /// Mean wall-clock cost of taking one checkpoint, in microseconds.
    pub snapshot_us: f64,
    /// Mean wall-clock cost of one rollback, in microseconds.
    pub restore_us: f64,
}

/// Hot-path figures for the paged memory substrate: the TLB in front
/// of the radix page-table walk, and the permission-flip primitive
/// behind guard-page install and poison-on-free.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemSubstrate {
    /// Translation-cache hits across a normal Apache run.
    pub tlb_hits: u64,
    /// Translation-cache misses (page-table walks) across the same run.
    pub tlb_misses: u64,
    /// `hits / (hits + misses)`.
    pub tlb_hit_rate: f64,
    /// Permission flips timed for `guard_flip_ns`.
    pub flips: usize,
    /// Mean wall-clock cost of one `protect()` permission flip, in
    /// nanoseconds. Flips allocate no frames, so this must stay
    /// page-count-independent and far below a page copy.
    pub guard_flip_ns: f64,
}

/// Sequential-vs-parallel diagnosis latency for one application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiagnosisLatency {
    /// Application key.
    pub app: String,
    /// Wave width of the parallel run.
    pub parallelism: usize,
    /// Wall-clock latency of the sequential diagnosis, in milliseconds.
    pub sequential_wall_ms: f64,
    /// Wall-clock latency of the parallel diagnosis, in milliseconds.
    pub parallel_wall_ms: f64,
    /// Virtual time charged by the sequential diagnosis, in milliseconds.
    pub sequential_virtual_ms: f64,
    /// Virtual time charged by the parallel diagnosis, in milliseconds.
    pub parallel_virtual_ms: f64,
    /// `sequential_virtual_ms / parallel_virtual_ms` — the deterministic
    /// speedup of the wave scheduler (the gated quantity).
    pub virtual_speedup: f64,
    /// Rollback/re-execution trials (identical in both runs by the
    /// determinism property).
    pub rollbacks: usize,
    /// Speculative trials launched by the parallel run.
    pub speculative_trials: usize,
    /// Speculative results consumed by the parallel run.
    pub speculative_hits: usize,
    /// Waves that ran with at least one speculative trial.
    pub parallel_waves: usize,
    /// Pooled trial contexts recycled (not forked fresh) by the
    /// parallel run's wave scheduler.
    pub slab_reuses: usize,
}

/// The full benchmark report (`results/perf.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// Normal-run throughput, one row per application.
    pub throughput: Vec<AppThroughput>,
    /// Checkpoint hot-path cost.
    pub snapshot: SnapshotCost,
    /// Memory-substrate hot paths (TLB hit rate, guard-flip cost).
    pub memory: MemSubstrate,
    /// Diagnosis latency, sequential vs parallel.
    pub diagnosis: Vec<DiagnosisLatency>,
}

fn launch(spec: &AppSpec, heap: u64) -> Process {
    let mut ctx = ProcessCtx::new(heap);
    ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
    Process::launch((spec.build)(), ctx).unwrap()
}

/// Feeds `n` trigger-free inputs and reports the wall-clock rate.
fn measure_throughput(spec: &AppSpec, n: usize) -> AppThroughput {
    let mut p = launch(spec, 1 << 28);
    let w = (spec.workload)(&WorkloadSpec::new(n, &[]));
    let t = Instant::now();
    for input in w {
        assert!(
            p.feed(input).is_ok(),
            "{}: trigger-free workload must not fail",
            spec.key
        );
    }
    let wall = t.elapsed().as_secs_f64();
    AppThroughput {
        app: spec.key.to_owned(),
        inputs: n,
        wall_ms: wall * 1e3,
        inputs_per_sec: n as f64 / wall,
    }
}

/// Times the checkpoint/rollback hot path on a warmed-up Apache process.
fn measure_snapshot(cycles: usize) -> SnapshotCost {
    let spec = spec_by_key("apache").unwrap();
    let mut p = launch(&spec, 1 << 28);
    let mut mgr = CheckpointManager::new(AdaptiveConfig::default(), 16);
    let w = (spec.workload)(&WorkloadSpec::new(200 + cycles * 10, &[]));
    let mut inputs = w.into_iter();
    for _ in 0..200 {
        assert!(p.feed(inputs.next().unwrap()).is_ok());
    }
    let (mut snap_ns, mut rest_ns) = (0u128, 0u128);
    for _ in 0..cycles {
        for _ in 0..10 {
            assert!(p.feed(inputs.next().unwrap()).is_ok());
        }
        let t = Instant::now();
        let id = mgr.force_checkpoint(&mut p);
        snap_ns += t.elapsed().as_nanos();
        let t = Instant::now();
        assert!(mgr.rollback_to(&mut p, id));
        rest_ns += t.elapsed().as_nanos();
    }
    SnapshotCost {
        cycles,
        snapshot_us: snap_ns as f64 / cycles as f64 / 1e3,
        restore_us: rest_ns as f64 / cycles as f64 / 1e3,
    }
}

/// Measures the memory-substrate hot paths.
///
/// The TLB hit rate comes from a normal (trigger-free) Apache run — the
/// same access mix the throughput rows measure — read off the process's
/// address space afterwards. The guard-flip cost times `protect()`
/// GUARD/RW round trips on a dedicated region, the primitive fa-sentry
/// uses for every slot placement, poison and release.
fn measure_mem_substrate(quick: bool) -> MemSubstrate {
    let spec = spec_by_key("apache").unwrap();
    let mut p = launch(&spec, 1 << 28);
    let n = if quick { 1_000 } else { 2_000 };
    for input in (spec.workload)(&WorkloadSpec::new(n, &[])) {
        assert!(
            p.feed(input).is_ok(),
            "apache: trigger-free workload must not fail"
        );
    }
    let stats = p.ctx.mem.tlb_stats();
    let lookups = stats.hits + stats.misses;
    let tlb_hit_rate = if lookups == 0 {
        0.0
    } else {
        stats.hits as f64 / lookups as f64
    };

    let mut mem = SimMemory::new();
    let base = Addr(0x7000_0000);
    mem.map(base, 1 << 20, "flip-bench").unwrap();
    let flips = if quick { 20_000 } else { 50_000 };
    let t = Instant::now();
    for i in 0..flips {
        let page = base.offset(((i % 256) * PAGE_SIZE) as u64);
        let perms = if i % 2 == 0 { Perms::GUARD } else { Perms::RW };
        mem.protect(page, PAGE_SIZE as u64, perms).unwrap();
    }
    let guard_flip_ns = t.elapsed().as_nanos() as f64 / flips as f64;
    MemSubstrate {
        tlb_hits: stats.hits,
        tlb_misses: stats.misses,
        tlb_hit_rate,
        flips,
        guard_flip_ns,
    }
}

/// Drives `spec` to its failure with checkpoints spaced so phase 1 can
/// reach a pre-trigger checkpoint within its search budget.
fn build_failed(spec: &AppSpec) -> (Process, CheckpointManager) {
    let mut p = launch(spec, 1 << 28);
    let mut mgr = CheckpointManager::new(AdaptiveConfig::default(), 16);
    mgr.force_checkpoint(&mut p);
    let w = (spec.workload)(&WorkloadSpec::new(600, &[100]));
    let mut ok = 0usize;
    for input in w {
        if !p.feed(input).is_ok() {
            break;
        }
        ok += 1;
        if ok.is_multiple_of(40) {
            mgr.force_checkpoint(&mut p);
        }
    }
    assert!(
        p.failure.is_some(),
        "{}: the trigger input must fail the process",
        spec.key
    );
    (p, mgr)
}

struct DiagnoseStats {
    launched: usize,
    hits: usize,
    waves: usize,
    slab_reuses: usize,
}

fn diagnose(spec: &AppSpec, parallelism: usize) -> (f64, first_aid_core::Diagnosis, DiagnoseStats) {
    let (mut p, mgr) = build_failed(spec);
    let config = EngineConfig {
        parallelism,
        ..EngineConfig::default()
    };
    let engine = DiagnosisEngine::with_faults(config, FaultPlan::none());
    let t = Instant::now();
    let outcome = engine.diagnose(&mut p, &mgr);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let d = match outcome {
        DiagnosisOutcome::Diagnosed(d) => d,
        other => panic!("{}: diagnosis must succeed, got {other:?}", spec.key),
    };
    let stats = DiagnoseStats {
        launched: engine.speculative_trials(),
        hits: engine.speculative_hits(),
        waves: engine.parallel_waves(),
        slab_reuses: engine.slab_reuses(),
    };
    (wall_ms, d, stats)
}

/// Measures sequential vs parallel diagnosis latency for one app.
fn measure_diagnosis(key: &str) -> DiagnosisLatency {
    let spec = spec_by_key(key).unwrap();
    let (seq_wall, seq_d, _) = diagnose(&spec, 1);
    let (par_wall, par_d, stats) = diagnose(&spec, PARALLELISM);
    assert_eq!(
        seq_d.rollbacks, par_d.rollbacks,
        "{key}: parallelism changed the rollback count"
    );
    let seq_virtual_ms = seq_d.elapsed_ns as f64 / 1e6;
    let par_virtual_ms = par_d.elapsed_ns as f64 / 1e6;
    DiagnosisLatency {
        app: key.to_owned(),
        parallelism: PARALLELISM,
        sequential_wall_ms: seq_wall,
        parallel_wall_ms: par_wall,
        sequential_virtual_ms: seq_virtual_ms,
        parallel_virtual_ms: par_virtual_ms,
        virtual_speedup: seq_virtual_ms / par_virtual_ms,
        rollbacks: seq_d.rollbacks,
        speculative_trials: stats.launched,
        speculative_hits: stats.hits,
        parallel_waves: stats.waves,
        slab_reuses: stats.slab_reuses,
    }
}

/// Runs the full benchmark. `quick` scales down the throughput runs
/// (the rate stays comparable to a full-size baseline).
pub fn measure(quick: bool) -> PerfReport {
    let n = if quick { 1_500 } else { 3_000 };
    let throughput = all_specs()
        .iter()
        .map(|s| measure_throughput(s, n))
        .collect();
    let snapshot = measure_snapshot(if quick { 20 } else { 50 });
    let memory = measure_mem_substrate(quick);
    let diagnosis = ["apache", "squid"]
        .iter()
        .map(|k| measure_diagnosis(k))
        .collect();
    PerfReport {
        throughput,
        snapshot,
        memory,
        diagnosis,
    }
}

/// Compares `current` against `baseline`, returning the violations.
///
/// The ≥2× virtual-speedup gate is absolute (it holds with or without a
/// baseline); the remaining gates need a baseline to compare against.
pub fn check(baseline: Option<&PerfReport>, current: &PerfReport) -> Vec<String> {
    let mut violations = Vec::new();
    for d in &current.diagnosis {
        if d.virtual_speedup < 2.0 {
            violations.push(format!(
                "{}: parallel diagnosis speedup {:.2}x is below the 2x gate",
                d.app, d.virtual_speedup
            ));
        }
    }
    if current.memory.tlb_hit_rate < 0.5 {
        violations.push(format!(
            "TLB hit rate {:.1}% is below the absolute 50% floor",
            current.memory.tlb_hit_rate * 100.0
        ));
    }
    let Some(base) = baseline else {
        return violations;
    };
    for cur in &current.throughput {
        if let Some(b) = base.throughput.iter().find(|b| b.app == cur.app) {
            if cur.inputs_per_sec < b.inputs_per_sec * 0.35 {
                violations.push(format!(
                    "{}: throughput {:.0}/s fell below 35% of baseline {:.0}/s",
                    cur.app, cur.inputs_per_sec, b.inputs_per_sec
                ));
            }
        }
    }
    if current.snapshot.snapshot_us > base.snapshot.snapshot_us * 2.5 {
        violations.push(format!(
            "snapshot cost {:.1}us exceeds 2.5x baseline {:.1}us",
            current.snapshot.snapshot_us, base.snapshot.snapshot_us
        ));
    }
    if current.snapshot.restore_us > base.snapshot.restore_us * 2.5 {
        violations.push(format!(
            "restore cost {:.1}us exceeds 2.5x baseline {:.1}us",
            current.snapshot.restore_us, base.snapshot.restore_us
        ));
    }
    if current.memory.guard_flip_ns > base.memory.guard_flip_ns * 2.5 {
        violations.push(format!(
            "guard flip cost {:.0}ns exceeds 2.5x baseline {:.0}ns",
            current.memory.guard_flip_ns, base.memory.guard_flip_ns
        ));
    }
    if current.memory.tlb_hit_rate < base.memory.tlb_hit_rate - 0.10 {
        violations.push(format!(
            "TLB hit rate {:.1}% fell more than 10 points below baseline {:.1}%",
            current.memory.tlb_hit_rate * 100.0,
            base.memory.tlb_hit_rate * 100.0
        ));
    }
    for cur in &current.diagnosis {
        if let Some(b) = base.diagnosis.iter().find(|b| b.app == cur.app) {
            for (what, now, then) in [
                (
                    "sequential",
                    cur.sequential_virtual_ms,
                    b.sequential_virtual_ms,
                ),
                ("parallel", cur.parallel_virtual_ms, b.parallel_virtual_ms),
            ] {
                if now > then * 1.25 {
                    violations.push(format!(
                        "{}: {what} diagnosis virtual time {now:.2}ms exceeds \
                         1.25x baseline {then:.2}ms",
                        cur.app
                    ));
                }
            }
        }
    }
    violations
}

/// Renders the report as a human-readable table.
pub fn render(r: &PerfReport) -> String {
    let mut out = String::from("Normal-run throughput (wall clock)\n");
    for t in &r.throughput {
        out.push_str(&format!(
            "  {:<12} {:>6} inputs  {:>9.1} ms  {:>10.0} inputs/s\n",
            t.app, t.inputs, t.wall_ms, t.inputs_per_sec
        ));
    }
    out.push_str(&format!(
        "Checkpoint hot path ({} cycles): snapshot {:.1} us, restore {:.1} us\n",
        r.snapshot.cycles, r.snapshot.snapshot_us, r.snapshot.restore_us
    ));
    out.push_str(&format!(
        "Memory substrate: TLB hit rate {:.1}% ({} hits / {} walks), \
         guard flip {:.0} ns ({} flips)\n",
        r.memory.tlb_hit_rate * 100.0,
        r.memory.tlb_hits,
        r.memory.tlb_misses,
        r.memory.guard_flip_ns,
        r.memory.flips
    ));
    out.push_str("Diagnosis latency, sequential vs parallel\n");
    for d in &r.diagnosis {
        out.push_str(&format!(
            "  {:<12} virtual {:>8.2} -> {:>8.2} ms ({:.2}x, width {})  \
             wall {:>7.1} -> {:>7.1} ms  {} rollbacks, {} waves, {}/{} spec hits, \
             {} slab reuses\n",
            d.app,
            d.sequential_virtual_ms,
            d.parallel_virtual_ms,
            d.virtual_speedup,
            d.parallelism,
            d.sequential_wall_ms,
            d.parallel_wall_ms,
            d.rollbacks,
            d.parallel_waves,
            d.speculative_hits,
            d.speculative_trials,
            d.slab_reuses,
        ));
    }
    out
}
