//! Table 2: applications and bugs used in the evaluation.

use fa_apps::all_specs;

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Application display name.
    pub app: String,
    /// Version.
    pub version: String,
    /// Bug description.
    pub bug: String,
    /// Lines of code of the original program.
    pub loc: String,
    /// Application description.
    pub desc: String,
}

/// Builds Table 2 from the registry.
pub fn rows() -> Vec<Table2Row> {
    all_specs()
        .into_iter()
        .map(|s| Table2Row {
            app: s.display.to_owned(),
            version: s.version.to_owned(),
            bug: s.bug_desc.to_owned(),
            loc: s.loc.to_owned(),
            desc: s.description.to_owned(),
        })
        .collect()
}

/// Renders Table 2 in the paper's layout.
pub fn render() -> String {
    let mut out = String::from(
        "Table 2. Applications and bugs used in evaluation.\n\
         Application   Ver.      Bug                       LOC    App. Desc.\n",
    );
    for r in rows() {
        out.push_str(&format!(
            "{:<13} {:<9} {:<25} {:<6} {}\n",
            r.app, r.version, r.bug, r.loc, r.desc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let s = super::render();
        for name in ["Apache", "Squid", "CVS", "Pine", "Mutt", "M4", "BC"] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
    }
}
