//! Fleet scale benchmark: the lock-free patch plane at 10²–10⁵ workers.
//!
//! Three measurements, one report (`results/fleet_scale.json`):
//!
//! 1. **Diagnosis phase** — each of the 9 applications runs under a
//!    real `FirstAidRuntime` until its bug triggers, producing the
//!    actual patches and the virtual diagnosis cost (`recovery_ns`)
//!    that seed the scale model ([`fa_fleet::AppPlan`]).
//! 2. **Scale points** — a [`fa_fleet::ScaleFleet`] at 10², 10³, 10⁴
//!    and 10⁵ workers on the mixed 9-app traffic profile. Virtual-time
//!    outputs (time-to-fleet-immunity, patch hits, failures, checksum)
//!    are deterministic and gated *exactly*; wall-clock throughput of
//!    the real threaded query phase is gated with slack.
//! 3. **Query latency** — the retired locked read (`get_locked`:
//!    mutex + full `PatchSet` clone) vs the lock-free plane (`get`)
//!    under multi-threaded contention; the `--check` gate requires the
//!    lock-free path to be ≥ [`SPEEDUP_GATE`]× faster.
//!
//! The sublinearity gate: from one scale point to the next (10× the
//! workers), time-to-fleet-immunity may grow by at most √10× — gossip
//! propagation is logarithmic in cells, so real growth is far smaller,
//! but the gate still fails any accidental return to per-worker
//! (linear) propagation.

use fa_apps::{all_specs, WorkloadSpec};
use fa_fleet::{measure_query_latency, AppPlan, ScaleConfig, ScaleFleet};
use first_aid_core::{FirstAidRuntime, PatchPool};
use serde::{Deserialize, Serialize};

use crate::paper_config;

/// Fleet sizes measured (the acceptance range 10²–10⁵).
pub const SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];

/// Required lock-free speedup over the locked baseline.
pub const SPEEDUP_GATE: f64 = 5.0;

/// Per-step immunity growth cap for 10× workers (√10).
pub const SUBLINEAR_FACTOR: f64 = 3.163;

/// Wall-clock throughput may drop to this fraction of the committed
/// baseline before the gate fires (same slack policy as `perf`).
pub const THROUGHPUT_SLACK: f64 = 0.35;

/// One application's diagnosis-phase result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScaleApp {
    /// Program executable name (pool key).
    pub app: String,
    /// Patches the diagnosis published.
    pub patches: usize,
    /// Virtual diagnosis cost, in milliseconds.
    pub recovery_ms: f64,
}

/// One fleet-size measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalePoint {
    pub workers: usize,
    pub cells: usize,
    pub gossip_rounds: u32,
    /// Simulated inputs = real hot-path queries performed.
    pub inputs: u64,
    /// Deterministic virtual time-to-fleet-immunity.
    pub immunity_ns: u64,
    /// Deterministic virtual time of the slowest patch publication.
    pub last_publish_ns: u64,
    /// Deterministic: triggers neutralized by an installed patch.
    pub patch_hits: u64,
    /// Deterministic: triggers that beat the patch to the worker.
    pub failures: u64,
    /// Deterministic digest of every query result.
    pub checksum: u64,
    /// Wall-clock of the threaded query phase, milliseconds.
    pub elapsed_ms: f64,
    /// Real aggregate throughput of the query phase.
    pub inputs_per_sec: f64,
}

/// Locked-vs-lock-free query latency under contention.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyPoint {
    pub threads: usize,
    pub iters_per_thread: u64,
    pub locked_ns: f64,
    pub lockfree_ns: f64,
    pub speedup: f64,
}

/// The full report (`results/fleet_scale.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetScaleReport {
    pub apps: Vec<ScaleApp>,
    pub latency: LatencyPoint,
    pub points: Vec<ScalePoint>,
}

/// Diagnosis phase: run every app's bug through a real runtime once,
/// harvesting the published patches and the virtual diagnosis cost.
pub fn diagnose_plans() -> Vec<AppPlan> {
    all_specs()
        .iter()
        .filter_map(|spec| {
            let pool = PatchPool::in_memory();
            let mut fa =
                FirstAidRuntime::launch((spec.build)(), paper_config(), pool.clone()).ok()?;
            let w = (spec.workload)(&WorkloadSpec::new(450, &[150]));
            fa.run(w, None);
            let rec = fa.recoveries.first()?;
            let program = fa.program().to_owned();
            let patches = pool.get(&program).patches().to_vec();
            if patches.is_empty() {
                return None;
            }
            Some(AppPlan {
                program,
                patches,
                recovery_ns: rec.recovery_ns,
            })
        })
        .collect()
}

fn scale_config(workers: usize) -> ScaleConfig {
    ScaleConfig {
        workers,
        seed: 42,
        ..ScaleConfig::default()
    }
}

/// Runs the full benchmark. `check` trims the latency iteration count
/// (a wall-clock-only measurement); every deterministic quantity uses
/// identical parameters in both modes so the exact-equality gates hold.
pub fn measure(check: bool) -> FleetScaleReport {
    let plans = diagnose_plans();
    let apps = plans
        .iter()
        .map(|p| ScaleApp {
            app: p.program.clone(),
            patches: p.patches.len(),
            recovery_ms: p.recovery_ns as f64 / 1e6,
        })
        .collect();

    let mut points = Vec::new();
    let mut last_fleet: Option<ScaleFleet> = None;
    for workers in SIZES {
        let fleet = ScaleFleet::new(scale_config(workers), plans.clone());
        let o = fleet.run();
        points.push(ScalePoint {
            workers: o.workers,
            cells: o.cells,
            gossip_rounds: o.gossip_rounds,
            inputs: o.inputs,
            immunity_ns: o.immunity_ns,
            last_publish_ns: o.last_publish_ns,
            patch_hits: o.patch_hits,
            failures: o.failures,
            checksum: o.checksum,
            elapsed_ms: o.elapsed_ns as f64 / 1e6,
            inputs_per_sec: o.inputs_per_sec,
        });
        last_fleet = Some(fleet);
    }

    // Latency duel on the 10⁵-warmed pool (same patches any size holds).
    let fleet = last_fleet.expect("at least one scale point");
    let programs: Vec<String> = plans.iter().map(|p| p.program.clone()).collect();
    let threads = fa_fleet::scale::default_threads();
    let iters = if check { 60_000 } else { 150_000 };
    let lat = measure_query_latency(fleet.pool(), &programs, threads, iters);
    FleetScaleReport {
        apps,
        latency: LatencyPoint {
            threads: lat.threads,
            iters_per_thread: lat.iters_per_thread,
            locked_ns: lat.locked_ns,
            lockfree_ns: lat.lockfree_ns,
            speedup: lat.speedup,
        },
        points,
    }
}

/// Paper-style text rendering.
pub fn render(report: &FleetScaleReport) -> String {
    let mut out = String::new();
    out.push_str("Fleet scale: lock-free patch plane, gossip propagation\n");
    out.push_str("=====================================================\n\n");
    out.push_str("Diagnosis phase (real runtimes, virtual time):\n");
    for a in &report.apps {
        out.push_str(&format!(
            "  {:<12} {:>2} patch(es)  recovery {:>9.1} ms\n",
            a.app, a.patches, a.recovery_ms
        ));
    }
    let l = &report.latency;
    out.push_str(&format!(
        "\nPer-allocation patch query ({} threads, {} iters/thread):\n  \
         locked {:>7.1} ns   lock-free {:>6.1} ns   speedup {:>5.1}x\n\n",
        l.threads, l.iters_per_thread, l.locked_ns, l.lockfree_ns, l.speedup
    ));
    out.push_str(
        "workers     cells  rounds  immunity(ms)  publish(ms)  hits    failures  Minputs/s\n",
    );
    for p in &report.points {
        out.push_str(&format!(
            "{:>7}  {:>6}  {:>6}  {:>12.1}  {:>11.1}  {:>7}  {:>8}  {:>9.2}\n",
            p.workers,
            p.cells,
            p.gossip_rounds,
            p.immunity_ns as f64 / 1e6,
            p.last_publish_ns as f64 / 1e6,
            p.patch_hits,
            p.failures,
            p.inputs_per_sec / 1e6,
        ));
    }
    out
}

/// The CI gate. Absolute gates (speedup, sublinearity, coverage) apply
/// to the fresh measurement; baseline gates (determinism equality,
/// throughput slack) additionally apply when a readable baseline
/// exists.
pub fn check(baseline: Option<&FleetScaleReport>, current: &FleetScaleReport) -> Vec<String> {
    let mut violations = Vec::new();

    if current.latency.speedup < SPEEDUP_GATE {
        violations.push(format!(
            "lock-free query speedup {:.1}x under the {SPEEDUP_GATE}x gate \
             (locked {:.1} ns vs lock-free {:.1} ns)",
            current.latency.speedup, current.latency.locked_ns, current.latency.lockfree_ns
        ));
    }

    if current.points.iter().map(|p| p.workers).max().unwrap_or(0) < 100_000 {
        violations.push("no 10^5-worker scale point measured".into());
    }

    for pair in current.points.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let worker_ratio = b.workers as f64 / a.workers.max(1) as f64;
        let immunity_ratio = b.immunity_ns as f64 / a.immunity_ns.max(1) as f64;
        if immunity_ratio > worker_ratio.sqrt().max(SUBLINEAR_FACTOR) {
            violations.push(format!(
                "time-to-fleet-immunity grew {immunity_ratio:.2}x from {} to {} workers \
                 (sublinear cap {:.2}x)",
                a.workers,
                b.workers,
                worker_ratio.sqrt().max(SUBLINEAR_FACTOR)
            ));
        }
    }

    let Some(base) = baseline else {
        return violations;
    };
    for cur in &current.points {
        let Some(b) = base.points.iter().find(|p| p.workers == cur.workers) else {
            violations.push(format!("baseline lacks the {}-worker point", cur.workers));
            continue;
        };
        // Virtual-time quantities are deterministic: exact equality.
        let det_cur = (
            cur.cells,
            cur.gossip_rounds,
            cur.inputs,
            cur.immunity_ns,
            cur.last_publish_ns,
            cur.patch_hits,
            cur.failures,
            cur.checksum,
        );
        let det_base = (
            b.cells,
            b.gossip_rounds,
            b.inputs,
            b.immunity_ns,
            b.last_publish_ns,
            b.patch_hits,
            b.failures,
            b.checksum,
        );
        if det_cur != det_base {
            violations.push(format!(
                "deterministic drift at {} workers: current {det_cur:?} vs baseline {det_base:?}",
                cur.workers
            ));
        }
        // Wall-clock throughput: generous slack, catches only
        // order-of-magnitude regressions.
        if cur.inputs_per_sec < b.inputs_per_sec * THROUGHPUT_SLACK {
            violations.push(format!(
                "query-phase throughput at {} workers fell to {:.2} Minputs/s \
                 (baseline {:.2}, floor {:.0}%)",
                cur.workers,
                cur.inputs_per_sec / 1e6,
                b.inputs_per_sec / 1e6,
                THROUGHPUT_SLACK * 100.0
            ));
        }
    }
    violations
}
