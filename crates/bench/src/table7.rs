//! Table 7: space overhead of checkpointing.
//!
//! COW checkpoints cost one page copy per page dirtied in the interval, so
//! MB/checkpoint tracks the write working set. The adaptive interval keeps
//! MB/second bounded even for large-working-set programs (paper §7.6.3).

use fa_allocext::ExtAllocator;
use fa_apps::{all_specs, alloc_intensive_profiles, spec_profiles, SynthApp, WorkloadSpec};
use fa_checkpoint::{CheckpointManager, CheckpointStats};
use fa_proc::{BoxedApp, Input, Process, ProcessCtx};

use crate::paper_config;

/// One row of Table 7.
#[derive(Clone, Debug)]
pub struct Table7Row {
    /// Program name.
    pub name: String,
    /// Average checkpoint size, MB.
    pub mb_per_checkpoint: f64,
    /// Average checkpoint data rate, MB per virtual second.
    pub mb_per_second: f64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

fn measure(app: BoxedApp, workload: Vec<Input>, name: &str) -> Table7Row {
    let cfg = paper_config();
    let mut ctx = ProcessCtx::new(1 << 31);
    ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
    let mut p = Process::launch(app, ctx).unwrap();
    let mut mgr = CheckpointManager::new(cfg.adaptive, cfg.max_checkpoints);
    mgr.force_checkpoint(&mut p);
    for input in workload {
        let r = p.feed(input);
        assert!(
            r.is_ok(),
            "{name}: checkpoint workloads must be failure-free"
        );
        mgr.maybe_checkpoint(&mut p);
    }
    let stats: CheckpointStats = mgr.stats();
    Table7Row {
        name: name.to_owned(),
        mb_per_checkpoint: stats.mb_per_checkpoint(),
        mb_per_second: stats.mb_per_second(),
        checkpoints: stats.taken,
    }
}

/// Runs all 22 programs; `scale` divides workload lengths.
pub fn rows(scale: usize) -> Vec<Table7Row> {
    let scale = scale.max(1);
    let mut out = Vec::new();
    for spec in all_specs().iter().filter(|s| !s.key.starts_with("apache-")) {
        let w = (spec.workload)(&WorkloadSpec::new(2_400 / scale, &[]));
        out.push(measure((spec.build)(), w, spec.display));
    }
    for profile in spec_profiles()
        .into_iter()
        .chain(alloc_intensive_profiles())
    {
        let w = fa_apps::synth::workload(&profile, 70_000 / scale);
        out.push(measure(Box::new(SynthApp::new(profile)), w, profile.name));
    }
    out
}

/// Renders Table 7 in the paper's layout.
pub fn render(rows: &[Table7Row]) -> String {
    let mut out = String::from(
        "Table 7. Space overhead incurred by checkpointing.\n\
         Program          MB/checkpoint  MB/second  (checkpoints)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<14.3} {:<10.3} {}\n",
            r.name, r.mb_per_checkpoint, r.mb_per_second, r.checkpoints,
        ));
    }
    out
}
