//! Ablations of First-Aid's design choices (called out in DESIGN.md):
//!
//! * **padding size** — the overflow patch only neutralizes overflows it
//!   can physically absorb; the paper's ~1 KB padding covers the common
//!   case, tiny padding does not;
//! * **quarantine threshold** — delay-free only protects dangling reads
//!   while the freed object stays resident; a too-small budget evicts the
//!   object before its stale read and the patch stops working;
//! * **adaptive vs. fixed checkpoint interval** — the adaptive controller
//!   bounds checkpoint overhead for large-working-set programs by
//!   stretching the interval (paper §3 / Table 7);
//! * **heap marking** — covered by the `fig3_misidentification`
//!   integration tests: without it, phase 1 picks a checkpoint *after*
//!   the bug-triggering point.

use fa_allocext::ExtAllocator;
use fa_apps::{spec_by_key, SynthApp, WorkloadSpec};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager};
use fa_proc::{Process, ProcessCtx};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool};

use crate::paper_config;

/// Outcome of one padding-size point: did the patch keep preventing?
#[derive(Clone, Debug)]
pub struct PaddingPoint {
    /// Per-side padding bytes.
    pub pad: u64,
    /// Failures over a workload with 3 bug triggers (1 = only the first,
    /// the patch works; >1 = the patch failed to absorb later overflows).
    pub failures: usize,
}

/// Sweeps the padding size on the Squid overflow (24-byte overflow).
pub fn padding_sweep(pads: &[u64]) -> Vec<PaddingPoint> {
    let spec = spec_by_key("squid").expect("squid registered");
    pads.iter()
        .map(|&pad| {
            let pool = PatchPool::in_memory();
            let mut fa = FirstAidRuntime::launch((spec.build)(), paper_config(), pool).unwrap();
            fa.with_ext(|ext| ext.set_padding(pad));
            let w = (spec.workload)(&WorkloadSpec::new(1_500, &[400, 800, 1_100]));
            let summary = fa.run(w, None);
            PaddingPoint {
                pad,
                failures: summary.failures,
            }
        })
        .collect()
}

/// Outcome of one quarantine-threshold point.
#[derive(Clone, Debug)]
pub struct QuarantinePoint {
    /// Quarantine byte budget.
    pub threshold: u64,
    /// Failures over a workload with 3 triggers.
    pub failures: usize,
    /// Peak quarantine residency in bytes.
    pub peak_bytes: u64,
}

/// Sweeps the quarantine threshold on the Apache dangling read, whose
/// stale pointers are dereferenced ~250 requests after the free: the
/// delay-free patch only helps while the entries stay quarantined. One
/// purge quarantines ~1.9 KB (seven 272-byte entries), so a budget below
/// that evicts entries before the stale reads and the bug recurs.
pub fn quarantine_sweep(thresholds: &[u64]) -> Vec<QuarantinePoint> {
    let spec = spec_by_key("apache").expect("apache registered");
    thresholds
        .iter()
        .map(|&threshold| {
            let pool = PatchPool::in_memory();
            let config = FirstAidConfig {
                quarantine_bytes: threshold,
                ..paper_config()
            };
            let mut fa = FirstAidRuntime::launch((spec.build)(), config, pool).unwrap();
            let w = (spec.workload)(&WorkloadSpec::new(2_200, &[400, 1_000, 1_600]));
            let summary = fa.run(w, None);
            let peak_bytes = fa.with_ext(|ext| ext.quarantine().bytes());
            QuarantinePoint {
                threshold,
                failures: summary.failures,
                peak_bytes,
            }
        })
        .collect()
}

/// Outcome of one checkpoint-interval policy.
#[derive(Clone, Debug)]
pub struct IntervalPoint {
    /// Policy name.
    pub policy: String,
    /// Checkpoint overhead fraction of busy time.
    pub overhead: f64,
    /// Final interval the controller settled on, ms.
    pub final_interval_ms: u64,
}

/// Compares the adaptive controller against a fixed 200 ms interval on
/// the vortex profile (the largest write working set).
pub fn interval_ablation() -> Vec<IntervalPoint> {
    let profile = fa_apps::spec_profiles()
        .into_iter()
        .find(|p| p.name == "255.vortex")
        .expect("vortex profile");
    let run = |adaptive: bool| -> IntervalPoint {
        let config = if adaptive {
            AdaptiveConfig::default()
        } else {
            AdaptiveConfig {
                // An absurd target never triggers adjustment: fixed 200 ms.
                overhead_target: f64::INFINITY,
                ..AdaptiveConfig::default()
            }
        };
        let mut ctx = ProcessCtx::new(1 << 31);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        let mut p = Process::launch(Box::new(SynthApp::new(profile)), ctx).unwrap();
        let mut mgr = CheckpointManager::new(config, 50);
        mgr.force_checkpoint(&mut p);
        let busy_start = p.ctx.clock.now();
        for input in fa_apps::synth::workload(&profile, 60_000) {
            let r = p.feed(input);
            assert!(r.is_ok());
            mgr.maybe_checkpoint(&mut p);
        }
        let total = p.ctx.clock.now() - busy_start;
        let ckpt_cost = mgr.stats().total_cost_ns;
        IntervalPoint {
            policy: if adaptive {
                "adaptive".into()
            } else {
                "fixed-200ms".into()
            },
            overhead: ckpt_cost as f64 / (total - ckpt_cost).max(1) as f64,
            final_interval_ms: mgr.interval_ns() / 1_000_000,
        }
    };
    vec![run(false), run(true)]
}

/// Renders all ablations as text.
pub fn render() -> String {
    let mut out =
        String::from("Ablation 1: padding size vs overflow prevention (Squid, 24-byte overflow)\n");
    out.push_str("  pad/side  failures (of 3 triggers)\n");
    for p in padding_sweep(&[8, 16, 64, 508]) {
        out.push_str(&format!("  {:<9} {}\n", p.pad, p.failures));
    }
    out.push_str("\nAblation 2: quarantine threshold vs dangling-read prevention (Apache)\n");
    out.push_str("  threshold  failures  peak quarantine bytes\n");
    for q in quarantine_sweep(&[512, 1 << 20]) {
        out.push_str(&format!(
            "  {:<10} {:<9} {}\n",
            q.threshold, q.failures, q.peak_bytes
        ));
    }
    out.push_str("\nAblation 3: adaptive vs fixed checkpoint interval (255.vortex)\n");
    out.push_str("  policy       ckpt overhead  final interval\n");
    for i in interval_ablation() {
        out.push_str(&format!(
            "  {:<12} {:<14} {} ms\n",
            i.policy,
            crate::pct(i.overhead),
            i.final_interval_ms
        ));
    }
    out.push_str("\nAblation 4: heap marking — see tests/fig3_misidentification.rs:\n");
    out.push_str("  without marking, phase 1 accepts a post-trigger checkpoint whose\n");
    out.push_str("  preventive changes only mask the failure by disturbing the layout.\n");
    out
}
