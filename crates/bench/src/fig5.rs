//! Fig. 5: the bug report First-Aid generates for the Apache dangling
//! pointer read.

use fa_apps::{spec_by_key, WorkloadSpec};
use first_aid_core::{BugReport, FirstAidRuntime, PatchPool};

use crate::paper_config;

/// Runs the Apache case and returns its bug report.
pub fn apache_report() -> BugReport {
    let spec = spec_by_key("apache").expect("apache registered");
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch((spec.build)(), paper_config(), pool).unwrap();
    let w = (spec.workload)(&WorkloadSpec::new(1_500, &[400]));
    let _ = fa.run(w, None);
    fa.recoveries
        .first()
        .and_then(|r| r.report.clone())
        .expect("recovery must produce a report")
}

/// Renders the report (paper Fig. 5 layout).
pub fn render() -> String {
    apache_report().to_string()
}
