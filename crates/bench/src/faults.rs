//! Fault-injection experiment: seeded failures in First-Aid's *own*
//! pipeline stages (checkpoint corruption, flaky/wedged diagnosis,
//! validation-fork death, pool persistence I/O) and what the degradation
//! ladder makes of them.
//!
//! The headline claim is liveness: whatever the plan injects, the
//! runtime neither panics nor loses accounting — every offered input is
//! either served or deliberately dropped, and the `DegradationMetrics`
//! say which rung did the work.

use fa_apps::{AppSpec, WorkloadSpec};
use fa_faults::FaultStage;
use first_aid_core::{DegradationMetrics, FirstAidRuntime, PatchPool, RunSummary};
use serde::Serialize;

/// One (application, scenario) cell of the experiment.
#[derive(Debug, Serialize)]
pub struct FaultsExperiment {
    /// Application display name.
    pub app: String,
    /// Fault scenario name (see [`fa_apps::FAULT_SCENARIOS`]).
    pub scenario: String,
    /// Fault-plan seed.
    pub seed: u64,
    /// Inputs offered to the runtime.
    pub offered: usize,
    /// Inputs served (possibly through a degraded rung).
    pub served: usize,
    /// Inputs deliberately dropped.
    pub dropped: usize,
    /// Failures caught by the error monitor.
    pub failures: usize,
    /// Recoveries performed.
    pub recoveries: usize,
    /// Final virtual wall time.
    pub wall_ns: u64,
    /// Injected faults that actually fired, per stage label.
    pub fired: Vec<(String, u64)>,
    /// Ladder and resilience counters.
    pub degradation: DegradationMetrics,
}

/// Runs one application under one named fault scenario.
///
/// # Panics
///
/// Panics if the scenario name is unknown, launch fails, or input
/// conservation is violated (served + dropped != offered) — the latter
/// being exactly the liveness property this experiment exists to check.
pub fn run_case(
    spec: &AppSpec,
    scenario: &str,
    seed: u64,
    n: usize,
    triggers: &[usize],
) -> FaultsExperiment {
    let plan = fa_apps::fault_scenario(scenario, seed)
        .unwrap_or_else(|| panic!("unknown fault scenario {scenario}"));
    // Paper-scale checkpointing (as in table3/fig4) so that under the
    // "none" scenario every app — including Apache, whose ~250-input
    // error-propagation distance needs a deep checkpoint horizon — is
    // precisely patched and the degraded rungs stay at zero.
    let mut config = crate::paper_config();
    config.faults = plan.clone();
    // A persistent pool (in a scratch dir) so the PoolPersistIo stage has
    // real writes to fail; fall back to in-memory if the dir is unusable.
    let dir = std::env::temp_dir().join(format!("fa-faults-bench-{}-{scenario}-{seed}", spec.key));
    let _ = std::fs::remove_dir_all(&dir);
    let pool = PatchPool::persistent(&dir)
        .unwrap_or_else(|_| PatchPool::in_memory())
        .with_faults(plan.clone());
    let mut runtime =
        FirstAidRuntime::launch((spec.build)(), config, pool).expect("faults bench launch");
    let workload = (spec.workload)(&WorkloadSpec::new(n, triggers));
    let offered = workload.len();
    let summary: RunSummary = runtime.run(workload, None);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        summary.served + summary.dropped,
        offered,
        "{}/{scenario}: input conservation violated",
        spec.key
    );
    let fired = FaultStage::ALL
        .iter()
        .map(|&stage| (stage.label().to_owned(), plan.fired(stage)))
        .filter(|&(_, count)| count > 0)
        .collect();
    FaultsExperiment {
        app: spec.display.to_owned(),
        scenario: scenario.to_owned(),
        seed,
        offered,
        served: summary.served,
        dropped: summary.dropped,
        failures: summary.failures,
        recoveries: summary.recoveries,
        wall_ns: summary.wall_ns,
        fired,
        degradation: summary.degradation,
    }
}

/// Renders one experiment row for the console.
pub fn render(exp: &FaultsExperiment) -> String {
    let d = &exp.degradation;
    format!(
        "{:<10} {:<22} served {:>4}/{:<4} dropped {:>3}  rungs p/g/d/r {}/{}/{}/{}  \
         revoked {} cksum-miss {} timeouts {} retries {} fork-fail {} pool-io {}{}",
        exp.app,
        exp.scenario,
        exp.served,
        exp.offered,
        exp.dropped,
        d.precise_patches,
        d.generic_patches,
        d.rollback_drops,
        d.restarts,
        d.patch_revocations,
        d.checkpoint_checksum_misses,
        d.diagnosis_timeouts,
        d.reexec_retries,
        d.validation_fork_failures,
        d.pool_io_errors,
        if d.pool_degraded {
            " (pool degraded)"
        } else {
            ""
        },
    )
}
