//! Table 4: call-sites and memory objects affected by the runtime patch
//! (First-Aid) vs. the global environmental changes (Rx) in the buggy
//! region.
//!
//! This quantifies *exactness* (paper §4.3): First-Aid patches a handful
//! of call-sites and objects; Rx must change every object allocated or
//! freed during recovery, which is why Rx cannot leave its changes enabled
//! and therefore cannot prevent reoccurrence.

use fa_apps::{AppSpec, WorkloadSpec};
use fa_checkpoint::AdaptiveConfig;
use first_aid_core::{FirstAidRuntime, PatchPool, RxRuntime};

use crate::paper_config;

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Application name.
    pub app: String,
    /// Call-sites patched by First-Aid.
    pub fa_sites: usize,
    /// Call-sites touched by Rx's global changes in the buggy region.
    pub rx_sites: usize,
    /// Objects First-Aid's patches were applied to during the run.
    pub fa_objects: u64,
    /// Objects Rx's changes were applied to in the buggy region.
    pub rx_objects: u64,
}

impl Table4Row {
    /// First-Aid / Rx call-site ratio.
    pub fn site_ratio(&self) -> f64 {
        self.fa_sites as f64 / self.rx_sites.max(1) as f64
    }

    /// First-Aid / Rx object ratio.
    pub fn object_ratio(&self) -> f64 {
        self.fa_objects as f64 / self.rx_objects.max(1) as f64
    }
}

/// Runs one application under both systems and reports the footprints.
pub fn run_app(spec: &AppSpec) -> Table4Row {
    let workload = (spec.workload)(&WorkloadSpec::new(1_500, &[400]));

    // First-Aid: patched call-sites and patch-triggered objects.
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch((spec.build)(), paper_config(), pool).unwrap();
    let _ = fa.run(workload.clone(), None);
    let fa_sites = fa.recoveries.first().map(|r| r.patches.len()).unwrap_or(0);
    let fa_objects = fa.with_ext(|ext| {
        let c = ext.counters();
        c.objects_padded + c.objects_delayed + c.objects_zero_filled
    });

    // Rx: global environmental changes during its recovery window.
    let mut rx = RxRuntime::launch((spec.build)(), AdaptiveConfig::default(), 1 << 30).unwrap();
    let _ = rx.run(workload, None);
    let (rx_sites, rx_objects) = rx
        .recoveries
        .first()
        .map(|r| (r.changed_sites, r.changed_objects))
        .unwrap_or((0, 0));

    Table4Row {
        app: spec.display.to_owned(),
        fa_sites,
        rx_sites,
        fa_objects,
        rx_objects,
    }
}

/// Runs the seven real-bug applications (paper Table 4 scope).
pub fn rows() -> Vec<Table4Row> {
    fa_apps::all_specs()
        .iter()
        .filter(|s| !s.key.starts_with("apache-"))
        .map(run_app)
        .collect()
}

/// Renders Table 4 in the paper's layout.
pub fn render(rows: &[Table4Row]) -> String {
    let mut out = String::from(
        "Table 4. Call-sites and memory objects affected by the runtime patch in the buggy region.\n\
         \x20             Call-sites                 Objects\n\
         Name         First-Aid  Rx    Ratio     First-Aid  Rx      Ratio\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<10} {:<5} {:<9} {:<10} {:<7} {}\n",
            r.app,
            r.fa_sites,
            r.rx_sites,
            crate::pct(r.site_ratio()),
            r.fa_objects,
            r.rx_objects,
            crate::pct(r.object_ratio()),
        ));
    }
    out
}
