//! Experiment drivers: one module per table/figure of the paper's
//! evaluation (§7). The binaries in `src/bin/` print the paper-format
//! rows; integration tests assert the qualitative claims (who wins, what
//! is prevented, which overheads are small).
//!
//! | module | regenerates |
//! |---|---|
//! | [`table2`] | Table 2 — applications and bugs |
//! | [`table3`] | Table 3 — diagnosis, recovery time, rollbacks, prevention |
//! | [`table4`] | Table 4 — call-sites/objects touched, First-Aid vs Rx |
//! | [`table5`] | Table 5 — patch space overhead |
//! | [`table6`] | Table 6 — allocator-extension space overhead |
//! | [`table7`] | Table 7 — checkpointing space overhead |
//! | [`fig4`]   | Fig. 4 — throughput under repeated bug triggers |
//! | [`fig5`]   | Fig. 5 — the Apache bug report |
//! | [`fig6`]   | Fig. 6 — normal-execution time overhead |
//! | [`fleet`]  | Fleet immunization — shared patch pool vs per-worker ablation |
//! | [`faults`] | Fault injection — pipeline-stage failures and the degradation ladder |
//! | [`perf`]   | Wall-clock performance + parallel-diagnosis speedup regression gate |
//! | [`crash`]  | Crash-safe supervision — journal recovery cost vs a cold fleet start |
//! | [`fleet_scale`] | 10²–10⁵ workers — lock-free patch plane, gossip propagation gates |

pub mod ablation;
pub mod crash;
pub mod faults;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fleet;
pub mod fleet_scale;
pub mod perf;
pub mod sentry;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use fa_checkpoint::AdaptiveConfig;
use first_aid_core::{EngineConfig, FirstAidConfig};

/// The experiment-wide First-Aid configuration: 200 ms checkpoint
/// intervals as in paper §7.2.
pub fn paper_config() -> FirstAidConfig {
    FirstAidConfig {
        adaptive: AdaptiveConfig::default(),
        engine: EngineConfig::default(),
        ..FirstAidConfig::default()
    }
}

/// A scaled-down configuration for fast CI runs (20 ms intervals).
pub fn quick_config() -> FirstAidConfig {
    FirstAidConfig {
        adaptive: AdaptiveConfig {
            base_interval_ns: 20_000_000,
            max_interval_ns: 320_000_000,
            ..AdaptiveConfig::default()
        },
        ..FirstAidConfig::default()
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}
