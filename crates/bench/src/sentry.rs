//! Sentry-tier sweep: sampling overhead vs detection latency.
//!
//! Sweeps the sentry sampling rate (1/16, 1/64, 1/256) over all nine
//! paper applications and measures two opposing quantities:
//!
//! * **Overhead** — virtual wall time of a trigger-free run with the
//!   sentry tier enabled, relative to the same run with it off. The
//!   virtual clock is deterministic, so the numbers are exact and the
//!   CI gate can be tight: at 1/64 the mean overhead must stay under
//!   5% (the always-on production budget from the issue).
//! * **Detection latency** — virtual time at which a run with repeated
//!   bug triggers first fails, with and without sentries. When the
//!   buggy allocation lands in a guarded slot, the trap fires at the
//!   faulting *access* rather than at the later organic abort (e.g. a
//!   boundary-tag check on free), so the failure surfaces earlier; the
//!   gate requires at least one app caught before its organic crash
//!   point at rate 1/64.
//!
//! Everything measured here comes from the simulated clock, so a
//! `--check` replay reproduces the committed baseline bit-for-bit on
//! any machine.

use fa_allocext::{ExtAllocator, SentryConfig};
use fa_apps::{all_specs, squid, AppSpec, WorkloadSpec};
use fa_proc::{Input, InputBuilder, Process, ProcessCtx};
use serde::{Deserialize, Serialize};

/// Sampling rates swept (1/N allocations considered).
pub const RATES: [u32; 3] = [16, 64, 256];
/// The always-on production rate the acceptance gates apply to.
pub const GATED_RATE: u32 = 64;
/// Mean-overhead budget at the gated rate, percent.
pub const OVERHEAD_BUDGET_PCT: f64 = 5.0;
/// Trigger-free inputs per overhead run.
const OVERHEAD_INPUTS: usize = 2_000;
/// Inputs per detection run.
const DETECTION_INPUTS: usize = 1_000;
/// First trigger index of a detection run.
const TRIGGER_START: usize = 50;
/// Spacing between triggers of a detection run — wider than Apache's
/// 250-input revalidation delay, which each new purge pushes back.
const TRIGGER_EVERY: usize = 300;

/// Overhead of one app at one rate (trigger-free runs, virtual time).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppOverhead {
    /// Application key.
    pub app: String,
    /// Virtual wall time with the sentry tier off, ns.
    pub base_wall_ns: u64,
    /// Virtual wall time with the sentry tier at this rate, ns.
    pub sentry_wall_ns: u64,
    /// Allocations redirected into guarded slots.
    pub samples: u64,
    /// Sampling decisions declined for capacity reasons.
    pub skipped: u64,
    /// `(sentry - base) / base`, percent.
    pub overhead_pct: f64,
}

/// Detection latency of one app at one rate (triggered runs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppDetection {
    /// Application key.
    pub app: String,
    /// Input index of the organic (sentry-off) crash.
    pub organic_input: usize,
    /// Virtual time of the organic crash, ns.
    pub organic_ns: u64,
    /// Input index of the first failure with sentries, if any.
    pub failed_input: Option<usize>,
    /// Virtual time of that failure, ns.
    pub failed_ns: Option<u64>,
    /// Whether the failure was a sentry trap (vs the organic abort).
    pub sentry_trapped: bool,
    /// `organic_input - failed_input` when trapped — inputs by which the
    /// sentry beat the organic crash (negative: the sampled slot masked
    /// the organic detector and the failure came later).
    pub advance_inputs: i64,
    /// Trap fired at a strictly earlier input than the organic crash.
    pub caught_early: bool,
}

/// The silent-overflow scenario: a Squid run whose early FTP triggers
/// overflow by 3 bytes — inside the chunk's 16-byte size-class padding,
/// so the base heap never notices — followed by one loud trigger whose
/// 23-byte overflow tramples the next chunk header and crashes the run.
/// A sentried slot turns each silent overflow into canary evidence on
/// free, so the bug surfaces hundreds of inputs before the organic
/// crash point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SilentOverflow {
    /// Input index of the organic crash (the loud trigger).
    pub organic_input: usize,
    /// Input index of the first failure with sentries, if any.
    pub failed_input: Option<usize>,
    /// Whether that failure was a sentry trap.
    pub sentry_trapped: bool,
    /// Inputs by which the sentry beat the organic crash point.
    pub advance_inputs: i64,
    /// Trap fired at a strictly earlier input than the organic crash.
    pub caught_early: bool,
}

/// One rate's full sweep over the nine apps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RateSweep {
    /// Sampling rate (1/N).
    pub rate: u32,
    /// Per-app overhead rows.
    pub overhead: Vec<AppOverhead>,
    /// Mean of `overhead_pct` over the apps.
    pub mean_overhead_pct: f64,
    /// Per-app detection rows.
    pub detection: Vec<AppDetection>,
    /// The silent-overflow scenario at this rate.
    pub silent: SilentOverflow,
    /// Apps whose failure was a sentry trap.
    pub trapped_apps: usize,
    /// Runs caught strictly before their organic crash point (the nine
    /// registry detection runs plus the silent-overflow scenario).
    pub caught_early_apps: usize,
}

/// The full sweep report (`results/sentry.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SentryReport {
    /// Trigger-free inputs per overhead run.
    pub overhead_inputs: usize,
    /// Inputs per detection run.
    pub detection_inputs: usize,
    /// One sweep per sampling rate.
    pub rates: Vec<RateSweep>,
}

fn launch(spec: &AppSpec, sentry: Option<SentryConfig>) -> Process {
    let mut ctx = ProcessCtx::new(1 << 28);
    ctx.swap_alloc(|old| {
        let mut ext = ExtAllocator::attach(old.heap().clone());
        if let Some(cfg) = sentry {
            ext.enable_sentry(cfg);
        }
        Box::new(ext)
    });
    Process::launch((spec.build)(), ctx).unwrap()
}

fn sentry_cfg(rate: u32) -> SentryConfig {
    SentryConfig {
        rate,
        ..SentryConfig::default()
    }
}

/// Feeds `inputs`, stopping at the first failure. Returns the final
/// virtual wall time plus the sentry sample/skip counters.
fn run(
    spec: &AppSpec,
    sentry: Option<SentryConfig>,
    inputs: Vec<Input>,
) -> (Process, u64, u64, u64) {
    let mut p = launch(spec, sentry);
    for input in inputs {
        if !p.feed(input).is_ok() {
            break;
        }
    }
    let wall = p.ctx.clock.now();
    let (samples, skipped) = p.ctx.with_alloc_and_mem(|alloc, _| {
        let ext = alloc
            .as_any()
            .downcast_ref::<ExtAllocator>()
            .expect("the bench attached the extension allocator");
        ext.sentry_metrics()
            .map_or((0, 0), |m| (m.samples, m.skipped))
    });
    (p, wall, samples, skipped)
}

fn measure_overhead(spec: &AppSpec, rate: u32) -> AppOverhead {
    let w = WorkloadSpec::new(OVERHEAD_INPUTS, &[]);
    let (p, base_wall_ns, _, _) = run(spec, None, (spec.workload)(&w));
    assert!(
        p.failure.is_none(),
        "{}: trigger-free baseline must not fail",
        spec.key
    );
    let (p, sentry_wall_ns, samples, skipped) =
        run(spec, Some(sentry_cfg(rate)), (spec.workload)(&w));
    assert!(
        p.failure.is_none(),
        "{}: trigger-free sentried run must not fail (rate {rate})",
        spec.key
    );
    AppOverhead {
        app: spec.key.to_owned(),
        base_wall_ns,
        sentry_wall_ns,
        samples,
        skipped,
        overhead_pct: (sentry_wall_ns as f64 / base_wall_ns as f64 - 1.0) * 100.0,
    }
}

fn measure_detection(spec: &AppSpec, rate: u32) -> AppDetection {
    let triggers: Vec<usize> = (TRIGGER_START..DETECTION_INPUTS)
        .step_by(TRIGGER_EVERY)
        .collect();
    let w = WorkloadSpec::new(DETECTION_INPUTS, &triggers);
    let (p, _, _, _) = run(spec, None, (spec.workload)(&w));
    let organic = p
        .failure
        .clone()
        .unwrap_or_else(|| panic!("{}: the triggered run must crash organically", spec.key));
    let (p, _, _, _) = run(spec, Some(sentry_cfg(rate)), (spec.workload)(&w));
    let failure = p.failure.clone();
    let sentry_trapped = failure
        .as_ref()
        .is_some_and(|f| f.fault.class() == "sentry-trap");
    let advance_inputs = failure
        .as_ref()
        .filter(|_| sentry_trapped)
        .map_or(0, |f| organic.input_index as i64 - f.input_index as i64);
    AppDetection {
        app: spec.key.to_owned(),
        organic_input: organic.input_index,
        organic_ns: organic.at_ns,
        failed_input: failure.as_ref().map(|f| f.input_index),
        failed_ns: failure.as_ref().map(|f| f.at_ns),
        sentry_trapped,
        advance_inputs,
        caught_early: sentry_trapped && advance_inputs > 0,
    }
}

/// Input index of the loud (header-trampling) trigger of the
/// silent-overflow scenario — the organic crash point.
const SILENT_LOUD_AT: usize = 700;

/// Builds the silent-overflow Squid stream: HTTP fetches, benign FTP
/// listings, a padding-bounded silent overflow every tenth input, and
/// one loud trigger at [`SILENT_LOUD_AT`].
fn silent_squid_inputs() -> Vec<Input> {
    (0..SILENT_LOUD_AT + 40)
        .map(|i| {
            if i == SILENT_LOUD_AT {
                // 24 tildes escape to 23 bytes past the estimate —
                // through the padding, into the next chunk header.
                InputBuilder::op(squid::ops::FTP)
                    .text(format!("{}.example.org", "~".repeat(24)))
                    .gap_us(1_500)
                    .buggy()
                    .build()
            } else if i % 10 == 5 {
                // 4 tildes in a 25-char host: estimate 8 + 25 = 33
                // (rounded to a 48-byte user area), actual 7 + 29 = 36.
                // The 3-byte overflow stays inside the padding — silent
                // on the base heap, canary evidence in a sentried slot.
                InputBuilder::op(squid::ops::FTP)
                    .text(format!("{}{}", "~".repeat(4), "a".repeat(21)))
                    .gap_us(1_500)
                    .buggy()
                    .build()
            } else if i % 7 == 3 {
                InputBuilder::op(squid::ops::FTP)
                    .text("ftp.mirror.net")
                    .gap_us(1_500)
                    .build()
            } else {
                InputBuilder::op(squid::ops::HTTP)
                    .a(8_192 + (i as u64 * 37) % 8_192)
                    .gap_us(1_500)
                    .build()
            }
        })
        .collect()
}

fn measure_silent(rate: u32) -> SilentOverflow {
    let spec = fa_apps::spec_by_key("squid").expect("squid is registered");
    let (p, _, _, _) = run(&spec, None, silent_squid_inputs());
    let organic = p
        .failure
        .clone()
        .expect("the loud trigger must crash the organic run");
    assert_eq!(
        organic.input_index, SILENT_LOUD_AT,
        "silent overflows must stay silent on the base heap"
    );
    let (p, _, _, _) = run(&spec, Some(sentry_cfg(rate)), silent_squid_inputs());
    let failure = p.failure.clone();
    let sentry_trapped = failure
        .as_ref()
        .is_some_and(|f| f.fault.class() == "sentry-trap");
    let advance_inputs = failure
        .as_ref()
        .filter(|_| sentry_trapped)
        .map_or(0, |f| organic.input_index as i64 - f.input_index as i64);
    SilentOverflow {
        organic_input: organic.input_index,
        failed_input: failure.as_ref().map(|f| f.input_index),
        sentry_trapped,
        advance_inputs,
        caught_early: sentry_trapped && advance_inputs > 0,
    }
}

fn sweep(rate: u32) -> RateSweep {
    let overhead: Vec<AppOverhead> = all_specs()
        .iter()
        .map(|s| measure_overhead(s, rate))
        .collect();
    let mean_overhead_pct =
        overhead.iter().map(|o| o.overhead_pct).sum::<f64>() / overhead.len() as f64;
    let detection: Vec<AppDetection> = all_specs()
        .iter()
        .map(|s| measure_detection(s, rate))
        .collect();
    let silent = measure_silent(rate);
    RateSweep {
        rate,
        mean_overhead_pct,
        trapped_apps: detection.iter().filter(|d| d.sentry_trapped).count(),
        caught_early_apps: detection.iter().filter(|d| d.caught_early).count()
            + usize::from(silent.caught_early),
        overhead,
        detection,
        silent,
    }
}

/// Runs the full sweep. Every number is virtual-clock-derived, so the
/// report is identical across machines and runs.
pub fn measure() -> SentryReport {
    SentryReport {
        overhead_inputs: OVERHEAD_INPUTS,
        detection_inputs: DETECTION_INPUTS,
        rates: RATES.iter().map(|&r| sweep(r)).collect(),
    }
}

/// Compares `current` against `baseline`, returning the violations.
///
/// The two acceptance gates at rate 1/64 are absolute — mean overhead
/// under 5% and at least one app caught before its organic crash point.
/// Against a baseline the comparison is exact (the clock is virtual),
/// with a small float tolerance on the derived percentages.
pub fn check(baseline: Option<&SentryReport>, current: &SentryReport) -> Vec<String> {
    let mut violations = Vec::new();
    match current.rates.iter().find(|s| s.rate == GATED_RATE) {
        None => violations.push(format!("rate 1/{GATED_RATE} missing from the sweep")),
        Some(s) => {
            if s.mean_overhead_pct >= OVERHEAD_BUDGET_PCT {
                violations.push(format!(
                    "rate 1/{GATED_RATE}: mean overhead {:.2}% breaks the \
                     {OVERHEAD_BUDGET_PCT}% always-on budget",
                    s.mean_overhead_pct
                ));
            }
            if s.caught_early_apps < 1 {
                violations.push(format!(
                    "rate 1/{GATED_RATE}: no app was caught before its organic crash point"
                ));
            }
        }
    }
    let Some(base) = baseline else {
        return violations;
    };
    for cur in &current.rates {
        let Some(b) = base.rates.iter().find(|s| s.rate == cur.rate) else {
            continue;
        };
        if cur.mean_overhead_pct > b.mean_overhead_pct + 0.5 {
            violations.push(format!(
                "rate 1/{}: mean overhead {:.2}% grew past baseline {:.2}% + 0.5",
                cur.rate, cur.mean_overhead_pct, b.mean_overhead_pct
            ));
        }
        if cur.trapped_apps < b.trapped_apps {
            violations.push(format!(
                "rate 1/{}: {} apps trapped, baseline trapped {}",
                cur.rate, cur.trapped_apps, b.trapped_apps
            ));
        }
        if cur.caught_early_apps < b.caught_early_apps {
            violations.push(format!(
                "rate 1/{}: {} apps caught early, baseline caught {}",
                cur.rate, cur.caught_early_apps, b.caught_early_apps
            ));
        }
    }
    violations
}

/// Renders the report as a human-readable table.
pub fn render(r: &SentryReport) -> String {
    let mut out = String::new();
    for s in &r.rates {
        out.push_str(&format!(
            "Sentry rate 1/{} — mean overhead {:.2}%, {} of {} apps trapped, {} caught early\n",
            s.rate,
            s.mean_overhead_pct,
            s.trapped_apps,
            s.detection.len(),
            s.caught_early_apps,
        ));
        for (o, d) in s.overhead.iter().zip(&s.detection) {
            let caught = if d.caught_early {
                format!("caught {} inputs early", d.advance_inputs)
            } else if d.sentry_trapped {
                "trapped at crash point".to_owned()
            } else {
                "organic crash".to_owned()
            };
            out.push_str(&format!(
                "  {:<12} overhead {:>6.2}%  ({:>5} sampled, {:>5} skipped)  {}\n",
                o.app, o.overhead_pct, o.samples, o.skipped, caught
            ));
        }
        let si = &s.silent;
        out.push_str(&match (si.caught_early, si.sentry_trapped) {
            (true, _) => format!(
                "  silent-overflow squid: canary evidence at input {} — {} inputs \
                 before the organic crash at {}\n",
                si.failed_input.unwrap_or(0),
                si.advance_inputs,
                si.organic_input
            ),
            (false, true) => format!(
                "  silent-overflow squid: trapped only at the organic crash point ({})\n",
                si.organic_input
            ),
            (false, false) => format!(
                "  silent-overflow squid: not sampled; organic crash at {}\n",
                si.organic_input
            ),
        });
    }
    out
}
