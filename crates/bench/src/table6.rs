//! Table 6: space overhead of the memory allocator extension.
//!
//! The extension keeps 16 bytes of metadata per live object, so programs
//! with many small objects (cfrac, p2c, twolf) pay a large *relative*
//! overhead on a small heap while big-heap programs (gzip, mcf, bzip2)
//! pay nearly nothing (paper §7.6.2).

use fa_allocext::ExtAllocator;
use fa_apps::{all_specs, alloc_intensive_profiles, spec_profiles, SynthApp, WorkloadSpec};
use fa_proc::{BoxedApp, Input, Process, ProcessCtx};

/// One row of Table 6.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Program name.
    pub name: String,
    /// Heap footprint without the extension, MB.
    pub original_mb: f64,
    /// Heap footprint with the extension (metadata included), MB.
    pub firstaid_mb: f64,
}

impl Table6Row {
    /// Relative overhead.
    pub fn overhead(&self) -> f64 {
        (self.firstaid_mb - self.original_mb) / self.original_mb.max(1e-9)
    }
}

fn measure(app: BoxedApp, workload: Vec<Input>, name: &str) -> Table6Row {
    let mut ctx = ProcessCtx::new(1 << 31);
    ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
    let mut p = Process::launch(app, ctx).unwrap();
    for input in workload {
        let r = p.feed(input);
        assert!(r.is_ok(), "{name}: overhead workloads must be failure-free");
    }
    let heap = p.ctx.alloc().heap().stats().heap_bytes as f64;
    let meta = p.ctx.with_alloc_and_mem(|alloc, _| {
        alloc
            .as_any()
            .downcast_ref::<ExtAllocator>()
            .expect("ext installed")
            .meta_bytes()
    }) as f64;
    Table6Row {
        name: name.to_owned(),
        original_mb: heap / 1048576.0,
        firstaid_mb: (heap + meta) / 1048576.0,
    }
}

/// Runs all 22 programs (7 apps + 11 SPEC + 4 allocation-intensive).
///
/// `scale` divides the workload lengths for quick runs (1 = full).
pub fn rows(scale: usize) -> Vec<Table6Row> {
    let scale = scale.max(1);
    let mut out = Vec::new();
    for spec in all_specs().iter().filter(|s| !s.key.starts_with("apache-")) {
        let w = (spec.workload)(&WorkloadSpec::new(1_000 / scale, &[]));
        out.push(measure((spec.build)(), w, spec.display));
    }
    for profile in spec_profiles()
        .into_iter()
        .chain(alloc_intensive_profiles())
    {
        let w = fa_apps::synth::workload(&profile, 2_000 / scale);
        out.push(measure(Box::new(SynthApp::new(profile)), w, profile.name));
    }
    out
}

/// Renders Table 6 in the paper's layout.
pub fn render(rows: &[Table6Row]) -> String {
    let mut out = String::from(
        "Table 6. Space overhead incurred by the memory allocator extension.\n\
         Program          Original heap (MB)  First-Aid heap (MB)  Overhead\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<19.3} {:<20.3} {}\n",
            r.name,
            r.original_mb,
            r.firstaid_mb,
            crate::pct(r.overhead()),
        ));
    }
    out
}
