//! Sentry sweep: overhead vs detection latency. Writes `results/sentry.json`.
//!
//! `--check` is the CI gate: it replays the sweep (fully deterministic —
//! every number comes from the virtual clock), compares it against the
//! committed baseline in `results/sentry.json`, enforces the <5%
//! mean-overhead budget and the ≥1-app early-catch requirement at rate
//! 1/64, and exits nonzero on any violation without touching the
//! baseline.

use fa_bench::sentry;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let report = sentry::measure();
    println!("{}", sentry::render(&report));
    if check {
        let baseline: Option<sentry::SentryReport> = std::fs::read_to_string("results/sentry.json")
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok());
        if baseline.is_none() {
            eprintln!(
                "warning: no readable baseline at results/sentry.json; only absolute gates apply"
            );
        }
        let violations = sentry::check(baseline.as_ref(), &report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("sentry regression: {v}");
            }
            std::process::exit(1);
        }
        println!("sentry bench --check: no regressions");
        return;
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            std::fs::create_dir_all("results").ok();
            match std::fs::write("results/sentry.json", json) {
                Ok(()) => println!("wrote results/sentry.json"),
                Err(e) => eprintln!("failed to write results/sentry.json: {e}"),
            }
        }
        Err(e) => eprintln!("failed to serialize results: {e}"),
    }
}
