//! Regenerates paper Fig. 5 (the Apache dangling-read bug report).

fn main() {
    print!("{}", fa_bench::fig5::render());
}
