//! Fault-injection experiment: every named scenario against Apache and
//! Squid. Prints one row per (app, scenario) cell and writes the
//! machine-readable report to `results/faults.json`.
//!
//! `--check` runs a scaled-down matrix and writes nothing — the CI mode:
//! it only proves the ladder keeps the runtime live under every
//! scenario (input conservation is asserted inside `run_case`).

use fa_apps::{spec_by_key, FAULT_SCENARIOS};
use fa_bench::faults;
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    experiments: Vec<faults::FaultsExperiment>,
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (n, triggers): (usize, &[usize]) = if check {
        (400, &[30, 120])
    } else {
        (2_000, &[100, 600, 1_200])
    };
    let mut results = Results {
        experiments: Vec::new(),
    };
    for key in ["apache", "squid"] {
        let spec = spec_by_key(key).unwrap();
        for scenario in FAULT_SCENARIOS {
            let exp = faults::run_case(&spec, scenario, 0xfa017, n, triggers);
            println!("{}", faults::render(&exp));
            results.experiments.push(exp);
        }
    }
    if check {
        println!("faults bench --check: all scenarios live");
        return;
    }
    match serde_json::to_string_pretty(&results) {
        Ok(json) => {
            std::fs::create_dir_all("results").ok();
            match std::fs::write("results/faults.json", json) {
                Ok(()) => println!("wrote results/faults.json"),
                Err(e) => eprintln!("failed to write results/faults.json: {e}"),
            }
        }
        Err(e) => eprintln!("failed to serialize results: {e}"),
    }
}
