//! Fleet immunization experiment: shared patch pool vs per-worker pools
//! on Apache and Squid. Prints the per-worker timelines and writes the
//! machine-readable report to `results/fleet.json`.

use fa_apps::spec_by_key;
use fa_bench::fleet;
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    experiments: Vec<fleet::FleetExperiment>,
}

fn main() {
    let mut results = Results {
        experiments: Vec::new(),
    };
    // Apache's dangling read needs ~250 follow-up requests to manifest,
    // so its triggers are staggered wider than that propagation distance;
    // Squid's overflow fails at the trigger itself.
    for (key, per_shard, warmup, period, stagger) in [
        ("apache", 3_000, 400, 1_600, 350),
        ("squid", 3_000, 400, 1_600, 350),
    ] {
        let spec = spec_by_key(key).unwrap();
        let exp = fleet::run_app(&spec, 4, per_shard, warmup, period, stagger);
        println!("{}", fleet::render(&exp));
        results.experiments.push(exp);
    }
    match serde_json::to_string_pretty(&results) {
        Ok(json) => {
            std::fs::create_dir_all("results").ok();
            match std::fs::write("results/fleet.json", json) {
                Ok(()) => println!("wrote results/fleet.json"),
                Err(e) => eprintln!("failed to write results/fleet.json: {e}"),
            }
        }
        Err(e) => eprintln!("failed to serialize results: {e}"),
    }
}
