//! Regenerates paper Table 7 (checkpointing space overhead).
//!
//! Pass `--quick` for a scaled-down run.

use fa_bench::table7;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = table7::rows(if quick { 4 } else { 1 });
    print!("{}", table7::render(&rows));
}
