//! Regenerates paper Fig. 6 (normal-execution overhead).
//!
//! Pass `--quick` for a scaled-down run.

use fa_bench::fig6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = fig6::rows(if quick { 4 } else { 1 });
    print!("{}", fig6::render(&rows));
}
