//! Regenerates paper Table 3 (overall effectiveness).

use fa_bench::table3;

fn main() {
    let rows = table3::rows();
    print!("{}", table3::render(&rows));
}
