//! Runs the design-choice ablations (padding size, quarantine threshold,
//! adaptive interval, heap marking).

fn main() {
    print!("{}", fa_bench::ablation::render());
}
