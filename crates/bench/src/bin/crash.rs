//! Crash-safe supervision benchmark. Writes `results/crash.json`.
//!
//! `--check` is the CI gate: it re-runs a scaled-down matrix and
//! enforces the crash-safety invariants directly — journal recovery
//! under 5% of a cold fleet start, zero lost patch epochs, byte-
//! identical re-convergence, and an immunized post-recovery fleet —
//! exiting nonzero on any violation without touching the baseline.

use fa_apps::{all_specs, spec_by_key};
use fa_bench::crash;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (keys, per_shard, trigger): (Vec<&str>, usize, usize) = if check {
        (vec!["squid", "cvs", "m4"], 120, 30)
    } else {
        (all_specs().iter().map(|s| s.key).collect(), 450, 60)
    };
    let mut report = crash::CrashReport {
        experiments: Vec::new(),
    };
    for key in keys {
        let spec = spec_by_key(key).unwrap();
        let exp = crash::run_case(&spec, 3, per_shard, trigger);
        println!("{}", crash::render(&exp));
        report.experiments.push(exp);
    }
    let violations = crash::check(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("crash-safety violation: {v}");
        }
        std::process::exit(1);
    }
    if check {
        println!("crash bench --check: supervision is crash-safe");
        return;
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            std::fs::create_dir_all("results").ok();
            match std::fs::write("results/crash.json", json) {
                Ok(()) => println!("wrote results/crash.json"),
                Err(e) => eprintln!("failed to write results/crash.json: {e}"),
            }
        }
        Err(e) => eprintln!("failed to serialize results: {e}"),
    }
}
