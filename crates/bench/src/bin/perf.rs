//! Wall-clock performance benchmark. Writes `results/perf.json`.
//!
//! `--check` is the CI regression gate: it re-runs the measurements
//! (scaled-down throughput), compares them against the committed
//! baseline in `results/perf.json`, enforces the ≥2× virtual-time
//! speedup of parallel diagnosis, and exits nonzero on any violation
//! without touching the baseline.

use fa_bench::perf;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let report = perf::measure(check);
    println!("{}", perf::render(&report));
    if check {
        let baseline: Option<perf::PerfReport> = std::fs::read_to_string("results/perf.json")
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok());
        if baseline.is_none() {
            eprintln!(
                "warning: no readable baseline at results/perf.json; only absolute gates apply"
            );
        }
        let violations = perf::check(baseline.as_ref(), &report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("perf regression: {v}");
            }
            std::process::exit(1);
        }
        println!("perf bench --check: no regressions");
        return;
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            std::fs::create_dir_all("results").ok();
            match std::fs::write("results/perf.json", json) {
                Ok(()) => println!("wrote results/perf.json"),
                Err(e) => eprintln!("failed to write results/perf.json: {e}"),
            }
        }
        Err(e) => eprintln!("failed to serialize results: {e}"),
    }
}
