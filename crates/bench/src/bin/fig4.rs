//! Regenerates paper Fig. 4 (throughput under repeated bug triggers:
//! First-Aid vs Rx vs restart, Apache and Squid).

use fa_apps::spec_by_key;
use fa_bench::fig4;

fn main() {
    for key in ["apache", "squid"] {
        let spec = spec_by_key(key).unwrap();
        let fig = fig4::run_app(&spec, 14_000, 2_500);
        println!("{}", fig4::render(&fig));
        for s in &fig.series {
            println!("# {} raw series (s, MB/s):", s.system);
            for (t, v) in &s.points {
                println!("{t:.2}\t{v:.3}");
            }
            println!();
        }
    }
}
