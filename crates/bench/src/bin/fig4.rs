//! Regenerates paper Fig. 4 (throughput under repeated bug triggers:
//! First-Aid vs Rx vs restart, Apache and Squid). Also writes the raw
//! series to `results/fig4.json`.

use fa_apps::spec_by_key;
use fa_bench::fig4;
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    figures: Vec<fig4::Fig4>,
}

fn main() {
    let mut results = Results {
        figures: Vec::new(),
    };
    for key in ["apache", "squid"] {
        let spec = spec_by_key(key).unwrap();
        let fig = fig4::run_app(&spec, 14_000, 2_500);
        println!("{}", fig4::render(&fig));
        for s in &fig.series {
            println!("# {} raw series (s, MB/s):", s.system);
            for (t, v) in &s.points {
                println!("{t:.2}\t{v:.3}");
            }
            println!();
        }
        results.figures.push(fig);
    }
    match serde_json::to_string_pretty(&results) {
        Ok(json) => {
            std::fs::create_dir_all("results").ok();
            match std::fs::write("results/fig4.json", json) {
                Ok(()) => println!("wrote results/fig4.json"),
                Err(e) => eprintln!("failed to write results/fig4.json: {e}"),
            }
        }
        Err(e) => eprintln!("failed to serialize results: {e}"),
    }
}
