//! Regenerates paper Table 2 (applications and bugs).

fn main() {
    print!("{}", fa_bench::table2::render());
}
