//! Fleet-scale benchmark for the lock-free patch plane. Writes
//! `results/fleet_scale.json`.
//!
//! `--check` is the CI regression gate: it re-runs the measurements,
//! compares the deterministic virtual-time quantities (immunity,
//! hits/failures, checksum) *exactly* against the committed baseline,
//! enforces the ≥5× lock-free query speedup and sublinear
//! time-to-fleet-immunity absolutely, and exits nonzero on any
//! violation without touching the baseline.

use fa_bench::fleet_scale;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let report = fleet_scale::measure(check);
    println!("{}", fleet_scale::render(&report));
    if check {
        let baseline: Option<fleet_scale::FleetScaleReport> =
            std::fs::read_to_string("results/fleet_scale.json")
                .ok()
                .and_then(|s| serde_json::from_str(&s).ok());
        if baseline.is_none() {
            eprintln!(
                "warning: no readable baseline at results/fleet_scale.json; \
                 only absolute gates apply"
            );
        }
        let violations = fleet_scale::check(baseline.as_ref(), &report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("fleet_scale regression: {v}");
            }
            std::process::exit(1);
        }
        println!("fleet_scale bench --check: no regressions");
        return;
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            std::fs::create_dir_all("results").ok();
            match std::fs::write("results/fleet_scale.json", json) {
                Ok(()) => println!("wrote results/fleet_scale.json"),
                Err(e) => eprintln!("failed to write results/fleet_scale.json: {e}"),
            }
        }
        Err(e) => eprintln!("failed to serialize results: {e}"),
    }
}
