//! Regenerates paper Table 5 (patch space overhead).

use fa_bench::table5;

fn main() {
    let rows = table5::rows();
    print!("{}", table5::render(&rows));
}
