//! Regenerates paper Table 6 (allocator-extension space overhead).
//!
//! Pass `--quick` for a scaled-down run.

use fa_bench::table6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = table6::rows(if quick { 4 } else { 1 });
    print!("{}", table6::render(&rows));
}
