//! Regenerates paper Table 4 (First-Aid vs Rx footprint in the buggy
//! region).

use fa_bench::table4;

fn main() {
    let rows = table4::rows();
    print!("{}", table4::render(&rows));
}
