//! Fig. 6: normal-execution time overhead.
//!
//! Three configurations per program: the original allocator, the allocator
//! extension alone, and the full system (extension + checkpointing). The
//! reported figure is *busy* virtual time (arrival idle gaps excluded),
//! i.e. execution time for desktop programs and per-request service time
//! for servers — matching the paper's methodology.

use fa_allocext::ExtAllocator;
use fa_apps::{all_specs, alloc_intensive_profiles, spec_profiles, SynthApp, WorkloadSpec};
use fa_checkpoint::CheckpointManager;
use fa_proc::{BoxedApp, Input, Process, ProcessCtx};

use crate::paper_config;

/// One bar group of Fig. 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Program name.
    pub name: String,
    /// Busy virtual time with the plain allocator, ns.
    pub original_ns: u64,
    /// Busy time with the allocator extension, ns.
    pub allocator_ns: u64,
    /// Busy time with extension + checkpointing, ns.
    pub overall_ns: u64,
}

impl Fig6Row {
    /// Allocator-extension-only normalized time.
    pub fn allocator_norm(&self) -> f64 {
        self.allocator_ns as f64 / self.original_ns.max(1) as f64
    }

    /// Full-system normalized time.
    pub fn overall_norm(&self) -> f64 {
        self.overall_ns as f64 / self.original_ns.max(1) as f64
    }
}

enum Config {
    Original,
    Allocator,
    Overall,
}

fn busy_time(app: BoxedApp, workload: &[Input], config: Config) -> u64 {
    let mut ctx = ProcessCtx::new(1 << 31);
    if !matches!(config, Config::Original) {
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
    }
    let mut p = Process::launch(app, ctx).unwrap();
    let mut mgr = matches!(config, Config::Overall).then(|| {
        let cfg = paper_config();
        CheckpointManager::new(cfg.adaptive, cfg.max_checkpoints)
    });
    let gap_total: u64 = workload.iter().map(|i| i.gap_ns).sum();
    for input in workload {
        let r = p.feed(input.clone());
        assert!(r.is_ok(), "overhead workloads must be failure-free");
        if let Some(mgr) = mgr.as_mut() {
            mgr.maybe_checkpoint(&mut p);
        }
    }
    // The fork-like snapshot operation itself runs between requests (in
    // arrival gaps / scheduler slack); what the application pays on its
    // critical path is the COW page replication, which stays charged.
    let fork_base: u64 = mgr
        .map(|m| m.stats().taken * paper_config().adaptive.checkpoint_base_ns)
        .unwrap_or(0);
    p.ctx
        .clock
        .now()
        .saturating_sub(gap_total)
        .saturating_sub(fork_base)
}

fn measure(build: impl Fn() -> BoxedApp, workload: Vec<Input>, name: &str) -> Fig6Row {
    Fig6Row {
        name: name.to_owned(),
        original_ns: busy_time(build(), &workload, Config::Original),
        allocator_ns: busy_time(build(), &workload, Config::Allocator),
        overall_ns: busy_time(build(), &workload, Config::Overall),
    }
}

/// Runs all 22 programs; `scale` divides workload lengths.
pub fn rows(scale: usize) -> Vec<Fig6Row> {
    let scale = scale.max(1);
    let mut out = Vec::new();
    for spec in all_specs().iter().filter(|s| !s.key.starts_with("apache-")) {
        let w = (spec.workload)(&WorkloadSpec::new(2_000 / scale, &[]));
        out.push(measure(spec.build, w, spec.display));
    }
    for profile in spec_profiles()
        .into_iter()
        .chain(alloc_intensive_profiles())
    {
        let w = fa_apps::synth::workload(&profile, 70_000 / scale);
        out.push(measure(
            move || Box::new(SynthApp::new(profile)),
            w,
            profile.name,
        ));
    }
    out
}

/// Average full-system overhead across rows.
pub fn average_overhead(rows: &[Fig6Row]) -> f64 {
    let sum: f64 = rows.iter().map(|r| r.overall_norm() - 1.0).sum();
    sum / rows.len().max(1) as f64
}

/// Renders Fig. 6 as a text table of normalized times.
pub fn render(rows: &[Fig6Row]) -> String {
    let mut out = String::from(
        "Figure 6. Overhead for First-Aid during normal execution (normalized time).\n\
         Program          original  allocator  overall\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<9.3} {:<10.3} {:.3}\n",
            r.name,
            1.0,
            r.allocator_norm(),
            r.overall_norm(),
        ));
    }
    out.push_str(&format!(
        "Average overhead: {}\n",
        crate::pct(average_overhead(rows))
    ));
    out
}
