//! Fig. 4: throughput under repeatedly triggered bugs — First-Aid vs Rx
//! vs restart, for Apache (dangling read) and Squid (overflow).
//!
//! The qualitative shape the reproduction must preserve: First-Aid dips
//! once (the first trigger's recovery) and then holds steady; Rx dips on
//! *every* trigger (it survives but disables its changes); restart dips
//! on every trigger and pays full downtime.

use fa_apps::{AppSpec, WorkloadSpec};
use fa_checkpoint::AdaptiveConfig;
use first_aid_core::{FirstAidRuntime, PatchPool, RestartRuntime, RxRuntime, ThroughputSampler};
use serde::Serialize;

use crate::paper_config;

/// Downtime charged per whole-process restart (1.5 virtual seconds).
pub const RESTART_COST_NS: u64 = 1_500_000_000;

/// Sampling window (250 ms).
pub const WINDOW_NS: u64 = 250_000_000;

/// One system's throughput series.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    /// System name ("First-Aid", "Rx", "Restart").
    pub system: String,
    /// `(window start s, MB/s)` samples.
    pub points: Vec<(f64, f64)>,
    /// Failures observed over the run.
    pub failures: usize,
    /// Total bytes delivered.
    pub bytes: u64,
}

impl Series {
    /// Mean throughput over the run.
    pub fn mean_mbps(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }

    /// Number of windows with (near-)zero throughput — service outages.
    pub fn stall_windows(&self) -> usize {
        self.points.iter().filter(|p| p.1 < 0.05).count()
    }
}

/// The figure for one application: three series.
#[derive(Clone, Debug, Serialize)]
pub struct Fig4 {
    /// Application name.
    pub app: String,
    /// First-Aid, Rx, Restart series.
    pub series: Vec<Series>,
}

/// Builds the periodic-trigger workload of the experiment: normal traffic
/// with the bug triggered every `period` inputs after a warmup.
pub fn periodic_workload(spec: &AppSpec, n: usize, period: usize) -> Vec<fa_proc::Input> {
    let triggers: Vec<usize> = (1..)
        .map(|k| 1_000 + k * period)
        .take_while(|&i| i + 400 < n)
        .collect();
    (spec.workload)(&WorkloadSpec::new(n, &triggers))
}

/// Runs the three systems over the same workload.
pub fn run_app(spec: &AppSpec, n: usize, period: usize) -> Fig4 {
    let workload = periodic_workload(spec, n, period);

    let first_aid = {
        let mut sampler = ThroughputSampler::new(WINDOW_NS);
        let pool = PatchPool::in_memory();
        let mut fa = FirstAidRuntime::launch((spec.build)(), paper_config(), pool).unwrap();
        let summary = fa.run(workload.clone(), Some(&mut sampler));
        Series {
            system: "First-Aid".into(),
            points: sampler.series(),
            failures: summary.failures,
            bytes: summary.bytes_delivered,
        }
    };

    let rx = {
        let mut sampler = ThroughputSampler::new(WINDOW_NS);
        let mut rx = RxRuntime::launch((spec.build)(), AdaptiveConfig::default(), 1 << 30).unwrap();
        let summary = rx.run(workload.clone(), Some(&mut sampler));
        Series {
            system: "Rx".into(),
            points: sampler.series(),
            failures: summary.failures,
            bytes: summary.bytes_delivered,
        }
    };

    let restart = {
        let mut sampler = ThroughputSampler::new(WINDOW_NS);
        let mut rs = RestartRuntime::launch((spec.build)(), 1 << 30, RESTART_COST_NS).unwrap();
        let summary = rs.run(workload, Some(&mut sampler));
        Series {
            system: "Restart".into(),
            points: sampler.series(),
            failures: summary.failures,
            bytes: summary.bytes_delivered,
        }
    };

    Fig4 {
        app: spec.display.to_owned(),
        series: vec![first_aid, rx, restart],
    }
}

/// Renders a series as an ASCII sparkline plus summary numbers.
pub fn render(fig: &Fig4) -> String {
    let mut out = format!("Figure 4: throughput for {}\n", fig.app);
    let max = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for s in &fig.series {
        let bars: String = s
            .points
            .iter()
            .map(|&(_, v)| {
                const LEVELS: [char; 6] = [' ', '.', ':', '-', '=', '#'];
                LEVELS[((v / max) * 5.0).round() as usize]
            })
            .collect();
        out.push_str(&format!(
            "{:<10} |{}| mean {:>6.2} MB/s, {} failure(s), {} stalled window(s)\n",
            s.system,
            bars,
            s.mean_mbps(),
            s.failures,
            s.stall_windows(),
        ));
    }
    out
}
