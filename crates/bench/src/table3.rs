//! Table 3: overall effectiveness — diagnosis, runtime patch, recovery
//! time, future-error avoidance, rollbacks, validation time.

use fa_apps::{AppSpec, WorkloadSpec};
use first_aid_core::{FirstAidRuntime, PatchPool, RecoveryRecord};

use crate::paper_config;

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Application name.
    pub app: String,
    /// Diagnosed bug(s), e.g. "dangling pointer read".
    pub diagnosed: String,
    /// Runtime patch, e.g. "delay free(7)".
    pub patch: String,
    /// Number of patched call-sites.
    pub sites: usize,
    /// Failure recovery time in virtual seconds.
    pub recovery_s: f64,
    /// Later triggers of the same bug caused no failures.
    pub avoids_future_errors: bool,
    /// Rollbacks performed during diagnosis.
    pub rollbacks: usize,
    /// Patch validation time in virtual seconds.
    pub validation_s: f64,
    /// Validation confirmed consistent patch effects.
    pub validated: bool,
}

/// Runs one application through failure → recovery → repeated triggers.
///
/// The workload mixes bug-triggering inputs with normal inputs (paper
/// §7.2); the first trigger causes the failure and recovery, the later
/// ones must be neutralized by the installed patches.
pub fn run_app(spec: &AppSpec) -> Table3Row {
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch((spec.build)(), paper_config(), pool).unwrap();
    let w = (spec.workload)(&WorkloadSpec::new(1_500, &[400, 800, 1_100]));
    let summary = fa.run(w, None);

    let rec: &RecoveryRecord = fa
        .recoveries
        .first()
        .expect("the first trigger must cause a recovery");
    let diagnosis = rec.diagnosis.as_ref().expect("diagnosis must complete");
    let mut bug_names: Vec<String> = diagnosis.bugs.iter().map(|b| b.bug.to_string()).collect();
    bug_names.dedup();
    let change = rec
        .patches
        .first()
        .map(|p| p.change.label().to_owned())
        .unwrap_or_default();

    Table3Row {
        app: spec.display.to_owned(),
        diagnosed: bug_names.join(" + "),
        patch: format!("{}({})", change, rec.patches.len()),
        sites: rec.patches.len(),
        recovery_s: rec.recovery_ns as f64 / 1e9,
        avoids_future_errors: summary.failures == 1
            && summary.dropped == 0
            && fa.recoveries.len() == 1,
        rollbacks: diagnosis.rollbacks,
        validation_s: rec
            .validation
            .as_ref()
            .map(|v| v.validation_ns as f64 / 1e9)
            .unwrap_or(0.0),
        validated: rec.validation.as_ref().is_some_and(|v| v.consistent),
    }
}

/// Runs all nine evaluated cases.
pub fn rows() -> Vec<Table3Row> {
    fa_apps::all_specs().iter().map(run_app).collect()
}

/// Renders Table 3 in the paper's layout.
pub fn render(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "Table 3. Overall results for First-Aid in surviving and preventing memory bugs.\n\
         Application  Diagnosed bugs              Runtime patch      Recovery  Avoid   Rollbacks  Validation\n\
         \x20                                                        time (s)  future?            time (s)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<27} {:<18} {:<9.3} {:<7} {:<10} {:.3}\n",
            r.app,
            r.diagnosed,
            r.patch,
            r.recovery_s,
            if r.avoids_future_errors { "Yes" } else { "NO" },
            r.rollbacks,
            r.validation_s,
        ));
    }
    out
}
