//! Criterion micro-benchmarks for the First-Aid building blocks.
//!
//! These measure *host* performance of the simulator components (the
//! paper's virtual-time overheads are produced by the table/figure
//! binaries instead):
//!
//! * allocator fast paths — plain heap vs. the extension in normal mode
//!   vs. the extension with a matching patch (the interposition cost the
//!   paper's Fig. 6 "allocator" bars correspond to);
//! * checkpoint take/rollback at several dirty working-set sizes;
//! * canary fill/check throughput;
//! * one full end-to-end diagnosis (the Squid overflow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fa_allocext::{check_canary, fill_canary, BugType, ExtAllocator, Patch, PatchSet};
use fa_apps::{spec_by_key, WorkloadSpec};
use fa_heap::Heap;
use fa_mem::{Addr, SimMemory};
use fa_proc::{AllocBackend, CallSite, Clock, SymbolTable};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool};

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    let site = CallSite([1, 2, 3]);

    group.bench_function("plain_malloc_free", |b| {
        let mut mem = SimMemory::new();
        let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 28).unwrap();
        b.iter(|| {
            let p = heap.malloc(&mut mem, 128).unwrap();
            heap.free(&mut mem, p).unwrap();
        });
    });

    group.bench_function("ext_normal_malloc_free", |b| {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 28).unwrap();
        let mut ext = ExtAllocator::attach(heap);
        let mut clock = Clock::new();
        b.iter(|| {
            let p = ext.malloc(&mut mem, &mut clock, 128, site).unwrap();
            ext.free(&mut mem, &mut clock, p, site).unwrap();
        });
    });

    group.bench_function("ext_patched_malloc_free", |b| {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 28).unwrap();
        let mut ext = ExtAllocator::attach(heap);
        let symbols = SymbolTable::new();
        ext.set_normal(PatchSet::from_patches([Patch::new(
            BugType::BufferOverflow,
            site,
            &symbols,
        )]));
        let mut clock = Clock::new();
        b.iter(|| {
            let p = ext.malloc(&mut mem, &mut clock, 128, site).unwrap();
            ext.free(&mut mem, &mut clock, p, site).unwrap();
        });
    });

    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    for dirty_kb in [64u64, 1024, 8192] {
        group.throughput(Throughput::Bytes(dirty_kb * 1024));
        group.bench_with_input(
            BenchmarkId::new("snapshot_after_dirty", dirty_kb),
            &dirty_kb,
            |b, &kb| {
                let mut mem = SimMemory::new();
                let base = Addr(0x1000_0000);
                mem.map(base, 1 << 28, "heap").unwrap();
                b.iter(|| {
                    mem.fill(base, kb * 1024, 0x7a).unwrap();
                    let snap = mem.snapshot();
                    std::hint::black_box(snap.page_count());
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rollback", dirty_kb),
            &dirty_kb,
            |b, &kb| {
                let mut mem = SimMemory::new();
                let base = Addr(0x1000_0000);
                mem.map(base, 1 << 28, "heap").unwrap();
                mem.fill(base, kb * 1024, 0x11).unwrap();
                let snap = mem.snapshot();
                b.iter(|| {
                    mem.fill(base, kb * 1024, 0x22).unwrap();
                    mem.restore(&snap);
                });
            },
        );
    }
    group.finish();
}

fn bench_canary(c: &mut Criterion) {
    let mut group = c.benchmark_group("canary");
    let len = 64 * 1024u64;
    group.throughput(Throughput::Bytes(len));
    group.bench_function("fill_64k", |b| {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        b.iter(|| fill_canary(&mut mem, base, len).unwrap());
    });
    group.bench_function("check_64k_intact", |b| {
        let mut mem = SimMemory::new();
        let base = Addr(0x1000_0000);
        mem.map(base, 1 << 20, "heap").unwrap();
        fill_canary(&mut mem, base, len).unwrap();
        b.iter(|| {
            assert!(check_canary(&mut mem, base, len).unwrap().is_none());
        });
    });
    group.finish();
}

fn bench_diagnosis(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("squid_full_recovery", |b| {
        let spec = spec_by_key("squid").unwrap();
        b.iter(|| {
            let pool = PatchPool::in_memory();
            let mut fa =
                FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool).unwrap();
            let w = (spec.workload)(&WorkloadSpec::new(900, &[400]));
            let summary = fa.run(w, None);
            assert_eq!(summary.failures, 1);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_allocator,
    bench_checkpoint,
    bench_canary,
    bench_diagnosis
);
criterion_main!(benches);
