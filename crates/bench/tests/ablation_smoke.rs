//! Qualitative regression tests for the design-choice ablations.
//!
//! These replicate the `ablation` binary's sweeps and are slow (minutes
//! in release), so they are `#[ignore]`d by default; run them with
//! `cargo test -p fa-bench --release -- --ignored`.

use fa_bench::ablation;

#[test]
#[ignore = "slow sweep; run with --ignored"]
fn undersized_padding_fails_to_prevent() {
    // Squid's overflow writes 24 bytes past the estimate: 8-byte padding
    // cannot absorb it (the patch keeps "working" against the failure it
    // saw but later triggers corrupt memory again), while the paper's
    // 508-byte padding prevents all reoccurrences.
    let points = ablation::padding_sweep(&[8, 508]);
    let small = &points[0];
    let paper = &points[1];
    assert!(
        small.failures > 1,
        "8-byte padding must not survive repeated triggers: {small:?}"
    );
    assert_eq!(paper.failures, 1, "paper-size padding prevents: {paper:?}");
}

#[test]
#[ignore = "slow sweep; run with --ignored"]
fn tiny_quarantine_undermines_delay_free() {
    // Apache dereferences the dangling pointers ~250 requests after the
    // free; one purge quarantines ~1.9 KB, so a 512-byte budget evicts
    // most entries before their stale reads and the bug recurs — the
    // space/protection trade-off of paper §2.
    let points = ablation::quarantine_sweep(&[512, 1 << 20]);
    let tiny = &points[0];
    let paper = &points[1];
    assert!(
        tiny.failures > 1,
        "a 512-byte quarantine must fail to protect: {tiny:?}"
    );
    assert_eq!(paper.failures, 1, "the 1 MB threshold protects: {paper:?}");
}

#[test]
#[ignore = "slow sweep; run with --ignored"]
fn adaptive_interval_bounds_checkpoint_overhead() {
    let points = ablation::interval_ablation();
    let fixed = points
        .iter()
        .find(|p| p.policy.starts_with("fixed"))
        .unwrap();
    let adaptive = points.iter().find(|p| p.policy == "adaptive").unwrap();
    assert!(
        adaptive.overhead < fixed.overhead,
        "adaptive ({:.3}) must beat fixed ({:.3})",
        adaptive.overhead,
        fixed.overhead
    );
    assert!(
        adaptive.final_interval_ms > 200,
        "the controller must stretch the interval for vortex"
    );
    assert!(
        adaptive.overhead < fixed.overhead / 2.0,
        "adaptive must at least halve the fixed-interval overhead \
         (the run is dominated by the convergence phase): {:.3} vs {:.3}",
        adaptive.overhead,
        fixed.overhead
    );
}
