//! Smoke tests: the Table 3 driver reproduces the paper's qualitative
//! claims for each application.

use fa_apps::spec_by_key;
use fa_bench::table3::run_app;

#[test]
fn squid_overflow_row() {
    let r = run_app(&spec_by_key("squid").unwrap());
    assert_eq!(r.diagnosed, "buffer overflow");
    assert!(r.patch.starts_with("add padding"), "{}", r.patch);
    assert_eq!(r.sites, 1);
    assert!(r.avoids_future_errors);
    assert!(r.validated);
    assert!(r.recovery_s < 1.0, "short propagation: {}", r.recovery_s);
}

#[test]
fn apache_dangling_read_row() {
    let r = run_app(&spec_by_key("apache").unwrap());
    assert_eq!(r.diagnosed, "dangling pointer read");
    assert!(r.patch.starts_with("delay free"), "{}", r.patch);
    assert_eq!(r.sites, 7, "seven purge call-sites: {}", r.patch);
    assert!(r.avoids_future_errors);
    assert!(r.validated);
    assert!(
        r.rollbacks >= 15,
        "binary search over 7 sites needs many rollbacks, got {}",
        r.rollbacks
    );
}

#[test]
fn cvs_double_free_row() {
    let r = run_app(&spec_by_key("cvs").unwrap());
    assert_eq!(r.diagnosed, "double free");
    assert!(r.patch.starts_with("delay free"), "{}", r.patch);
    assert!(r.avoids_future_errors);
    assert!(r.validated);
}
