//! File-state rollback (paper §3): First-Aid keeps a copy of each
//! accessed file and its file pointer with every checkpoint and reinstates
//! them on rollback. Consequently a recovery that replays committed
//! writes must leave the repository byte-identical to a failure-free run —
//! no lost and no duplicated commits.

use fa_apps::{cvs, spec_by_key, WorkloadSpec};
use first_aid::prelude::*;

fn repo_fingerprint(p: &Process) -> Vec<(String, usize)> {
    (0..8u64)
        .map(|i| {
            let name = format!("repo/src/file{i}.c");
            (
                name.clone(),
                p.ctx.files.contents(&name).map_or(0, <[u8]>::len),
            )
        })
        .collect()
}

#[test]
fn recovery_neither_loses_nor_duplicates_commits() {
    let spec = spec_by_key("cvs").unwrap();

    // Reference: the same workload minus the poisoned request, executed
    // without any failure (the trigger does not touch the repository, so
    // file contents must match exactly).
    let reference = {
        let w = (spec.workload)(&WorkloadSpec::new(900, &[450]));
        let mut ctx = ProcessCtx::new(1 << 28);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        let mut p = Process::launch(Box::new(cvs::Cvs), ctx).unwrap();
        for (i, input) in w.into_iter().enumerate() {
            if i == 450 {
                continue; // skip the malformed request entirely
            }
            assert!(p.feed(input).is_ok());
        }
        repo_fingerprint(&p)
    };

    // Supervised run: the malformed request double-frees at 450, First-Aid
    // rolls back (losing recent in-memory AND file writes), diagnoses
    // across re-executions that redo commits repeatedly, patches, and
    // replays forward.
    let supervised = {
        let pool = PatchPool::in_memory();
        let mut fa =
            FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool).unwrap();
        let w = (spec.workload)(&WorkloadSpec::new(900, &[450]));
        let summary = fa.run(w, None);
        assert_eq!(summary.failures, 1);
        assert_eq!(summary.dropped, 0);
        repo_fingerprint(fa.process())
    };

    assert_eq!(
        supervised, reference,
        "rollback/replay must leave every repository file byte-for-byte \
         consistent with a failure-free execution"
    );
}
