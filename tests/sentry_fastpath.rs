//! End-to-end tests of the sentry tier: sampled guarded slots trap the
//! paper's bugs at the faulting access, the fast diagnosis path seeded
//! with the trapped call-site reaches the *same* diagnosis as the full
//! rollback ladder, and pipeline self-faults degrade the fast path to
//! the full ladder instead of wedging.

use fa_apps::{all_specs, spec_by_key, WorkloadSpec};
use fa_proc::CallSite;
use first_aid::core::{FaultPlan, FaultStage, Injection};
use first_aid::prelude::*;

const INPUTS: usize = 900;
const TRIGGER: usize = 400;

/// Sample every allocation and never cool a site, so the bug-triggering
/// object is deterministically redirected into a guarded slot.
fn always_on_sentry() -> SentryConfig {
    SentryConfig {
        rate: 1,
        max_slots: 512,
        hot_threshold: u64::MAX,
        ..SentryConfig::default()
    }
}

/// Distilled recovery outcome for cross-path comparison: the diagnosed
/// bug type, the sorted triggering call-sites, and the sorted patches.
struct Outcome {
    bug: BugType,
    sites: Vec<CallSite>,
    patches: Vec<Patch>,
    summary: first_aid::core::runtime::RunSummary,
    detection: Option<String>,
}

fn run_app(key: &str, config: FirstAidConfig) -> (FirstAidRuntime, Outcome) {
    let spec = spec_by_key(key).unwrap_or_else(|| panic!("{key} registered"));
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch((spec.build)(), config, pool).unwrap();
    let w = (spec.workload)(&WorkloadSpec::new(INPUTS, &[TRIGGER]));
    let summary = fa.run(w, None);
    let rec = fa
        .recoveries
        .first()
        .unwrap_or_else(|| panic!("{key}: a recovery must have run"));
    let diag = rec
        .diagnosis
        .as_ref()
        .unwrap_or_else(|| panic!("{key}: diagnosis must complete"));
    assert_eq!(diag.bugs.len(), 1, "{key}: exactly one bug expected");
    let mut sites = diag.bugs[0].sites.clone();
    sites.sort();
    let mut patches = rec.patches.clone();
    patches.sort_by_key(|p| (p.site, p.bug as u8));
    let outcome = Outcome {
        bug: diag.bugs[0].bug,
        sites,
        patches,
        detection: rec.report.as_ref().map(|r| r.detection.clone()),
        summary,
    };
    (fa, outcome)
}

/// Acceptance: for every paper app, a sentry-caught bug yields the same
/// diagnosis (bug type + call-sites + patches) as the full rollback
/// ladder reaches without sentries.
#[test]
fn fast_path_matches_full_ladder_on_every_app() {
    for spec in all_specs() {
        let (_, ladder) = run_app(spec.key, FirstAidConfig::default());
        let sentry_cfg = FirstAidConfig {
            sentry: Some(always_on_sentry()),
            ..FirstAidConfig::default()
        };
        let (_, fast) = run_app(spec.key, sentry_cfg);

        assert_eq!(ladder.bug, spec.expect_bug, "{}: ladder bug type", spec.key);
        assert_eq!(fast.bug, ladder.bug, "{}: fast-path bug type", spec.key);
        assert_eq!(
            fast.sites, ladder.sites,
            "{}: fast path must identify the same call-sites",
            spec.key
        );
        assert_eq!(
            fast.patches, ladder.patches,
            "{}: fast path must generate the same patches",
            spec.key
        );
        assert_eq!(
            fast.summary.dropped, 0,
            "{}: nothing dropped on the fast path",
            spec.key
        );

        let m = &fast.summary.sentry;
        assert!(m.samples > 0, "{}: allocations were sampled", spec.key);
        assert!(
            m.traps >= 1,
            "{}: the sentry must trap the bug (metrics: {m:?})",
            spec.key
        );
        assert_eq!(
            m.fast_path_diagnoses, 1,
            "{}: the trap must feed the fast path (metrics: {m:?})",
            spec.key
        );
        if let Some(d) = &fast.detection {
            assert!(
                d == "sentry-trap" || d == "canary-on-free",
                "{}: report must record the sentry detection tier, got {d}",
                spec.key
            );
        }
        assert_eq!(
            ladder.summary.sentry.samples, 0,
            "{}: the baseline run must be sentry-free",
            spec.key
        );
    }
}

/// Under an injected diagnosis-stage fault, the fast path steps aside
/// and the full ladder finishes the job: no wedge, same patches.
#[test]
fn fast_path_degrades_to_full_ladder_under_faults() {
    let (_, ladder) = run_app("apache", FirstAidConfig::default());
    let config = FirstAidConfig {
        sentry: Some(always_on_sentry()),
        faults: FaultPlan::builder(7)
            .inject(FaultStage::DiagnosisTimeout, Injection::Nth(vec![0]))
            .build(),
        ..FirstAidConfig::default()
    };
    let (fa, fast) = run_app("apache", config);

    assert_eq!(
        fa.recoveries[0].kind,
        first_aid::core::runtime::RecoveryKind::Patched,
        "recovery still concludes with patches"
    );
    assert_eq!(fast.sites, ladder.sites, "degraded path, same call-sites");
    assert_eq!(fast.patches, ladder.patches, "degraded path, same patches");
    let m = &fast.summary.sentry;
    assert_eq!(
        m.fast_path_diagnoses, 0,
        "the wedged fast path must not claim the diagnosis"
    );
    assert!(
        m.full_ladder_diagnoses >= 1,
        "the full ladder must have taken over (metrics: {m:?})"
    );
}

/// The fleet merges sentry metrics across workers, and a site immunized
/// anywhere stops being sampled everywhere: post-patch triggers are
/// neutralized without any further trap.
#[test]
fn fleet_merges_sentry_metrics_and_suppresses_patched_sites() {
    use first_aid::apps::fleet::sharded_stream;

    let spec = spec_by_key("squid").unwrap();
    let fleet = first_aid::fleet::Fleet::new(
        spec.build,
        first_aid::fleet::FleetConfig {
            workers: 3,
            runtime: FirstAidConfig {
                sentry: Some(always_on_sentry()),
                ..FirstAidConfig::default()
            },
            ..first_aid::fleet::FleetConfig::default()
        },
    );

    // Phase 1: one worker's shard carries the trigger; its sentry traps
    // the bug and the diagnosis lands in the shared pool.
    let r1 = fleet.run(sharded_stream(&spec, &[vec![30], vec![], vec![]], 80, 21));
    assert_eq!(r1.failures, 1, "only the triggered worker fails");
    assert!(r1.sentry.samples > 0, "workers sampled allocations");
    assert!(r1.sentry.traps >= 1, "the trigger was trapped by a sentry");
    assert_eq!(r1.sentry.fast_path_diagnoses, 1, "trap fed the fast path");

    // Phase 2: every worker sees a trigger, but the pooled patch (synced
    // via the pool epoch) both neutralizes it and suppresses sampling of
    // the patched site fleet-wide — no new traps anywhere.
    let traps_before = r1.sentry.traps;
    let r2 = fleet.run(sharded_stream(
        &spec,
        &[vec![15], vec![15], vec![15]],
        50,
        22,
    ));
    assert_eq!(r2.failures, 0, "no worker fails post-patch");
    assert_eq!(
        r2.sentry.traps, 0,
        "patched sites are suppressed fleet-wide, so no further traps \
         (phase 1 had {traps_before})"
    );
    assert_eq!(r2.patch_hits, 3, "each worker's trigger was neutralized");
}
