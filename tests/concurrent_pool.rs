//! Concurrent supervision: the patch pool is shared state between
//! processes of the same program (paper §3, "Patch management" makes
//! patches "available to all the processes that are running the same
//! program"). Here two supervised processes run on separate OS threads
//! against one pool; whichever hits the bug first publishes the patch and
//! the totals show at most the early failures, never one per process per
//! trigger.

use std::sync::Arc;

use fa_apps::{spec_by_key, WorkloadSpec};
use first_aid::prelude::*;

#[test]
fn two_processes_share_learned_patches() {
    let spec = Arc::new(spec_by_key("mutt").expect("mutt registered"));
    let pool = PatchPool::in_memory();

    // Process A learns the patch first (trigger early).
    let a = {
        let spec = Arc::clone(&spec);
        let pool = pool.clone();
        std::thread::spawn(move || {
            let mut fa =
                FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool).unwrap();
            let w = (spec.workload)(&WorkloadSpec::new(900, &[200, 600]));
            fa.run(w, None)
        })
    };
    let summary_a = a.join().expect("thread A");
    assert_eq!(summary_a.failures, 1, "A fails once and learns the patch");

    // Processes B and C start *after* A's patch exists and run
    // concurrently; both are protected from their first trigger on.
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let spec = Arc::clone(&spec);
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut fa =
                    FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool)
                        .unwrap();
                let w = (spec.workload)(&WorkloadSpec::new(900, &[50, 400, 800]));
                fa.run(w, None)
            })
        })
        .collect();
    for h in handles {
        let summary = h.join().expect("worker thread");
        assert_eq!(
            summary.failures, 0,
            "other processes inherit the patch immediately: {summary:?}"
        );
    }
    assert_eq!(pool.len("mutt"), 1, "one shared patch, no duplicates");
}

#[test]
fn validation_runs_on_a_parallel_thread() {
    // Exercise ValidationEngine::validate_parallel end to end: recover
    // synchronously, then re-validate the installed patches on a worker
    // thread from the recovery checkpoint's snapshot.
    use first_aid::core::ValidationEngine;

    let spec = spec_by_key("squid").unwrap();
    let pool = PatchPool::in_memory();
    let mut fa =
        FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool.clone()).unwrap();
    let w = (spec.workload)(&WorkloadSpec::new(900, &[400]));
    let _ = fa.run(w, None);
    let diagnosis = fa.recoveries[0].diagnosis.as_ref().unwrap();
    let until = diagnosis.until_cursor;

    // Re-validate on a thread using a fresh fork (the engine's parallel
    // path); the patches must validate consistently there too.
    let snap = fa.process().snapshot();
    let patches = pool.get("squid");
    let handle = ValidationEngine::new(3).validate_parallel(
        fa.process(),
        &snap,
        &patches,
        until.min(fa.process().cursor()),
    );
    let outcome = handle.join().expect("validation thread");
    assert!(outcome.consistent, "{:?}", outcome.reason);
}
