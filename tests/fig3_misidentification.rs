//! The paper Fig. 3 scenario: without heap marking, phase 1 can
//! misidentify the checkpoint for patching.
//!
//! Timeline: object B is prematurely freed (the bug-triggering point),
//! *then* a checkpoint C1 is taken, then the freed space is re-allocated
//! to object E, and finally a write through the dangling pointer corrupts
//! E, failing. Re-executed from C1 with preventive changes, E gets padded
//! and lands elsewhere, so the dangling write hits unowned free space and
//! the failure is *accidentally* avoided — unless heap marking canary-fills
//! the free chunks and catches the stray write.

use fa_allocext::{ChangePlan, ExtAllocator};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager};
use fa_mem::Addr;
use first_aid::core::harness::{ReexecOptions, ReplayHarness};
use first_aid::prelude::*;

/// Drives the exact Fig. 3 interleaving via explicit ops:
/// op 0 = setup, op 1 = free B (bug trigger), op 2 = allocate E,
/// op 3 = dangling write + E integrity check, op 4 = no-op filler.
#[derive(Clone, Default)]
struct Fig3App {
    b: Option<Addr>,
    e: Option<Addr>,
}

impl App for Fig3App {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("dispatch", |ctx| {
            match input.op {
                0 => {
                    let b = ctx.call("alloc_b", |ctx| ctx.malloc(64))?;
                    ctx.fill(b, 64, 0xb0)?;
                    self.b = Some(b);
                    // A guard allocation keeps B away from the top chunk,
                    // so freeing B leaves a binned free chunk (as in the
                    // paper's figure) rather than merging into the top.
                    let g = ctx.call("alloc_guard", |ctx| ctx.malloc(64))?;
                    ctx.fill(g, 64, 0x99)?;
                }
                1 => {
                    // Bug-triggering point: premature free, pointer kept.
                    ctx.call("free_b", |ctx| ctx.free(self.b.unwrap()))?;
                }
                2 => {
                    // E reuses B's chunk (same size, best fit).
                    let e = ctx.call("alloc_e", |ctx| ctx.malloc(64))?;
                    ctx.fill(e, 64, 0)?;
                    self.e = Some(e);
                }
                3 => {
                    // The dangling write corrupts whatever owns the chunk.
                    ctx.call("stale_write", |ctx| {
                        ctx.write_u64(self.b.unwrap().offset(8), 0xbad)
                    })?;
                    let v = ctx.call("check_e", |ctx| ctx.read_u64(self.e.unwrap().offset(8)))?;
                    ctx.check(v == 0, "object E corrupted")?;
                }
                _ => {}
            }
            Ok(Response::bytes(8))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

fn input(op: u32) -> Input {
    InputBuilder::op(op).gap_us(100).build()
}

/// Builds the scenario: setup, trigger, checkpoint C1, reuse, failure.
/// Returns (process, manager, checkpoint id, success-region end).
fn build() -> (Process, CheckpointManager, u64, usize) {
    let mut ctx = ProcessCtx::new(1 << 26);
    ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
    let mut p = Process::launch(Box::new(Fig3App::default()), ctx).unwrap();
    let mut mgr = CheckpointManager::new(AdaptiveConfig::default(), 16);

    assert!(p.feed(input(0)).is_ok()); // alloc B
    assert!(p.feed(input(1)).is_ok()); // premature free (bug trigger)
    let c1 = mgr.force_checkpoint(&mut p); // checkpoint AFTER the trigger
    assert!(p.feed(input(2)).is_ok()); // E reuses B's chunk
    for _ in 0..3 {
        assert!(p.feed(input(4)).is_ok());
    }
    let r = p.feed(input(3)); // dangling write corrupts E
    assert!(!r.is_ok(), "the original run must fail");
    let until = p.log().len();
    (p, mgr, c1, until)
}

#[test]
fn original_failure_reproduces() {
    let (p, _, _, _) = build();
    assert_eq!(p.failure.as_ref().unwrap().fault.class(), "assertion");
}

#[test]
fn without_heap_marking_the_wrong_checkpoint_appears_to_work() {
    let (mut p, mgr, c1, until) = build();
    // Re-execute from the post-trigger checkpoint with all preventive
    // changes but NO heap marking (what a naive phase 1 would do).
    let r = ReplayHarness::reexecute(
        &mut p,
        &mgr,
        c1,
        ChangePlan::all_preventive(),
        &ReexecOptions {
            mark_heap: false,
            timing_seed: 0,
            until_cursor: until,
            integrity_check: false,
        },
    );
    assert!(
        r.passed,
        "padding moves E away from B's chunk, accidentally masking the \
         failure — the Fig. 3 misidentification: {:?}",
        r.failure
    );
}

#[test]
fn heap_marking_exposes_the_pre_checkpoint_trigger() {
    let (mut p, mgr, c1, until) = build();
    let r = ReplayHarness::reexecute(
        &mut p,
        &mgr,
        c1,
        ChangePlan::all_preventive(),
        &ReexecOptions {
            mark_heap: true,
            timing_seed: 0,
            until_cursor: until,
            integrity_check: false,
        },
    );
    // The run may pass, but the stray write into the marked free chunk is
    // caught as canary corruption, so this checkpoint is rejected.
    assert!(
        r.mark_corrupt(),
        "heap marking must catch the dangling write into pre-checkpoint \
         freed space: {:?}",
        r.manifests
    );
}

#[test]
fn full_engine_rejects_post_trigger_checkpoint() {
    // With an additional pre-trigger checkpoint available, the complete
    // engine must pick it, not C1.
    let mut ctx = ProcessCtx::new(1 << 26);
    ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
    let mut p = Process::launch(Box::new(Fig3App::default()), ctx).unwrap();
    let mut mgr = CheckpointManager::new(AdaptiveConfig::default(), 16);

    let c0 = mgr.force_checkpoint(&mut p); // BEFORE everything
    assert!(p.feed(input(0)).is_ok());
    assert!(p.feed(input(4)).is_ok());
    let _c_pre = mgr.force_checkpoint(&mut p); // before the trigger
    assert!(p.feed(input(1)).is_ok()); // trigger
    let c1 = mgr.force_checkpoint(&mut p); // after the trigger
    assert!(p.feed(input(2)).is_ok());
    let r = p.feed(input(3));
    assert!(!r.is_ok());

    let engine = first_aid::core::DiagnosisEngine::default();
    match engine.diagnose(&mut p, &mgr) {
        first_aid::core::DiagnosisOutcome::Diagnosed(d) => {
            assert_ne!(
                d.checkpoint_id, c1,
                "the engine must not patch from the post-trigger checkpoint"
            );
            assert!(d.checkpoint_id < c1 && d.checkpoint_id >= c0);
            assert!(
                d.bugs
                    .iter()
                    .any(|b| b.bug == BugType::DanglingWrite || b.bug == BugType::DanglingRead),
                "a dangling bug must be diagnosed: {:?}",
                d.bugs
            );
        }
        other => panic!("expected a diagnosis, got {other:?}"),
    }
}
