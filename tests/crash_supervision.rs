//! Crash-safe supervision acceptance tests.
//!
//! The tentpole guarantees, end to end:
//!
//! * a supervisor killed at any seeded kill point of its journal —
//!   including mid-append, leaving a torn final record — restarts,
//!   recovers the journal's valid prefix, and *re-converges* to the
//!   same patch-pool state (byte-identical `export_state`) and the
//!   same diagnosis output as an uninterrupted run, on all nine
//!   evaluated applications;
//! * any truncation of the journal recovers to a valid earlier epoch,
//!   never a corrupt state, and recovery is idempotent;
//! * injected hung trials never wedge a diagnosis wave — the watchdog
//!   reaps them and the run conserves its inputs;
//! * a flapping (repeatedly revoked) patch is quarantined and
//!   re-admitted via a single-worker canary that must neutralize the
//!   bug before the patch re-propagates fleet-wide.

use fa_apps::fleet::sharded_stream;
use fa_apps::{all_specs, fault_scenario, spec_by_key, AppSpec, WorkloadSpec};
use first_aid::core::{KillPoint, KillSchedule};
use first_aid::prelude::*;

const WORKLOAD: usize = 450;
const TRIGGER: usize = 150;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fa-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_once(spec: &AppSpec, pool: PatchPool) -> (FirstAidRuntime, usize) {
    let mut fa = FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool)
        .expect("runtime launches");
    let w = (spec.workload)(&WorkloadSpec::new(WORKLOAD, &[TRIGGER]));
    let summary = fa.run(w, None);
    (fa, summary.failures)
}

/// Canonical summary of every completed diagnosis: bug types and
/// patched call-site names, order-independent.
fn diagnosis_output(fa: &FirstAidRuntime) -> Vec<String> {
    fa.recoveries
        .iter()
        .filter_map(|r| {
            r.diagnosis.as_ref().map(|d| {
                let mut bugs: Vec<String> = d.bugs.iter().map(|b| format!("{:?}", b.bug)).collect();
                bugs.sort();
                let mut sites: Vec<&str> = r
                    .patches
                    .iter()
                    .flat_map(|p| p.site_names.iter().map(String::as_str))
                    .collect();
                sites.sort();
                format!("{bugs:?} @ {sites:?}")
            })
        })
        .collect()
}

/// The acceptance sweep (ISSUE criterion): for every app, a supervisor
/// killed at every seeded kill point — clean at the first append, a
/// seeded sample in between, torn mid-way through the final record —
/// restarts, recovers, re-runs, and lands on the byte-identical pool
/// state and identical diagnosis output of the uninterrupted run.
#[test]
fn killed_supervisor_reconverges_on_every_app() {
    for spec in all_specs() {
        // Uninterrupted reference run on a journaled pool.
        let ref_dir = scratch(&format!("ref-{}", spec.key));
        let ref_pool = PatchPool::journaled(&ref_dir).unwrap();
        let (ref_fa, ref_failures) = run_once(&spec, ref_pool.clone());
        let program = ref_fa.program().to_string();
        let ref_export = ref_pool.export_state(&program);
        let ref_diag = diagnosis_output(&ref_fa);
        assert!(
            !ref_diag.is_empty(),
            "{}: reference run diagnoses",
            spec.key
        );
        let appends = ref_pool.journal().unwrap().appends();
        assert!(
            appends > 1,
            "{}: the run journals supervision state",
            spec.key
        );

        // The seeded kill schedule, always including both endpoints:
        // death at the very first append and a torn final record.
        let mut points = vec![KillPoint::clean(0), KillPoint::torn(appends - 1)];
        points.extend(KillSchedule::sampled(0xfa1d ^ appends, appends, 3));

        for (i, kp) in points.into_iter().enumerate() {
            let dir = scratch(&format!("kill-{}-{i}", spec.key));
            // Doomed run: the journal dies at the kill point (the
            // supervisor crash); everything in memory is then lost.
            let crashed_diag = {
                let pool = PatchPool::journaled(&dir).unwrap();
                pool.journal().unwrap().arm_kill(kp);
                let (fa, _) = run_once(&spec, pool.clone());
                assert!(
                    pool.journal().unwrap().is_dead(),
                    "{}: kill point {kp:?} fires within the run",
                    spec.key
                );
                diagnosis_output(&fa)
            };

            // Restart: reopen the journal (repairing any torn tail),
            // recover, and re-run the same workload.
            let pool = PatchPool::journaled(&dir).unwrap();
            let (mut fa, failures) = run_once(&spec, pool.clone());
            let rerun_diag = diagnosis_output(&fa);
            assert_eq!(
                pool.export_state(&program),
                ref_export,
                "{}: kill {kp:?} re-converges to the reference pool state",
                spec.key
            );
            assert!(
                failures <= ref_failures,
                "{}: recovery never costs extra failures",
                spec.key
            );
            // Whichever lifecycle phase diagnosed (pre-crash, post-
            // restart, or both), the output is the reference output.
            for diag in [&crashed_diag, &rerun_diag] {
                if !diag.is_empty() {
                    assert_eq!(diag, &ref_diag, "{}: kill {kp:?}", spec.key);
                }
            }
            assert!(
                !crashed_diag.is_empty() || !rerun_diag.is_empty(),
                "{}: some phase diagnosed the bug",
                spec.key
            );

            // Recovery is idempotent: replaying the journal onto the
            // live, already-recovered runtime applies nothing and
            // leaves the state untouched.
            assert_eq!(fa.recover_from_journal(), 0, "{}", spec.key);
            assert_eq!(pool.export_state(&program), ref_export, "{}", spec.key);

            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&ref_dir);
    }
}

/// Prefix-closure at the pool level: every record-boundary truncation
/// of a real run's journal (plus a garbage tail on top of each) recovers
/// to a valid state at an epoch no later than the final one, epochs are
/// monotone in the prefix length, and a second recovery applies nothing.
#[test]
fn journal_truncation_recovers_a_valid_earlier_epoch_never_corrupt() {
    let spec = spec_by_key("squid").unwrap();
    let dir = scratch("truncate");
    let pool = PatchPool::journaled(&dir).unwrap();
    let (fa, _) = run_once(&spec, pool.clone());
    let program = fa.program().to_string();
    let final_epoch = pool.epoch(&program);
    assert!(final_epoch >= 1, "the run published at least one epoch");
    let journal_path = pool.journal().unwrap().path();
    let bytes = std::fs::read(&journal_path).unwrap();
    let records = first_aid::core::parse_prefix(&bytes).0.len();
    assert!(records > 1);

    let mut last_epoch = 0u64;
    for n in 0..=records {
        let img = first_aid::core::truncate_to_records(&bytes, n);
        for tail in [&b""[..], &b"fawal1 0123456789abcdef {\"seq\":"[..]] {
            let cut_dir = scratch(&format!("truncate-{n}-{}", tail.len()));
            std::fs::create_dir_all(&cut_dir).unwrap();
            let mut image = img.clone();
            image.extend_from_slice(tail);
            std::fs::write(cut_dir.join("pool.wal"), &image).unwrap();
            let recovered = PatchPool::journaled(&cut_dir).unwrap();
            let epoch = recovered.epoch(&program);
            assert!(
                epoch <= final_epoch,
                "prefix of {n} records is an earlier epoch ({epoch} <= {final_epoch})"
            );
            // The recovered state is well-formed (canonical export
            // serializes and parses) and recovery is idempotent.
            let export = recovered.export_state(&program);
            assert!(serde_json::from_str::<serde_json::Value>(&export).is_ok());
            assert_eq!(recovered.recover_from_journal(), 0);
            assert_eq!(recovered.export_state(&program), export);
            if tail.is_empty() {
                assert!(epoch >= last_epoch, "epochs are monotone in the prefix");
                last_epoch = epoch;
            }
            let _ = std::fs::remove_dir_all(&cut_dir);
        }
    }
    assert_eq!(
        last_epoch, final_epoch,
        "the full log recovers the final epoch"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Canonical, order-insensitive digest of a patch set (for comparing
/// the lock-free plane against the locked oracle).
fn digest(set: &PatchSet) -> Vec<String> {
    let mut rows: Vec<String> = set.patches().iter().map(|p| format!("{p:?}")).collect();
    rows.sort();
    rows
}

/// Journal/replay equivalence for the lock-free read plane: a pool
/// recovered from a (possibly torn) journal rebuilds its RCU snapshot
/// directory to exactly the state the locked mutex-and-clone oracle
/// reports — same epoch, same patches — both right after recovery and
/// after re-running the workload to convergence, where it must also
/// match the uninterrupted reference run's plane.
#[test]
fn recovered_read_plane_matches_locked_oracle_and_reference() {
    let spec = spec_by_key("squid").unwrap();
    let ref_dir = scratch("plane-ref");
    let ref_pool = PatchPool::journaled(&ref_dir).unwrap();
    let (ref_fa, _) = run_once(&spec, ref_pool.clone());
    let program = ref_fa.program().to_string();
    let (ref_set, ref_epoch) = ref_pool.get_with_epoch(&program);
    let ref_digest = digest(&ref_set);
    assert!(ref_epoch >= 1, "reference run published");
    let appends = ref_pool.journal().unwrap().appends();

    let mut points = vec![KillPoint::clean(0), KillPoint::torn(appends - 1)];
    points.extend(KillSchedule::sampled(0x91a7e ^ appends, appends, 2));

    for (i, kp) in points.into_iter().enumerate() {
        let dir = scratch(&format!("plane-kill-{i}"));
        {
            let pool = PatchPool::journaled(&dir).unwrap();
            pool.journal().unwrap().arm_kill(kp);
            let _ = run_once(&spec, pool.clone());
            assert!(pool.journal().unwrap().is_dead(), "kill {kp:?} fires");
        }

        // Restart: recovery replays the journal's valid prefix and must
        // republish the read plane — before any new traffic, the
        // lock-free view already equals the locked oracle.
        let pool = PatchPool::journaled(&dir).unwrap();
        let (fast, fast_epoch) = pool.get_with_epoch(&program);
        let (locked, locked_epoch) = pool.get_locked_with_epoch(&program);
        assert_eq!(fast_epoch, locked_epoch, "kill {kp:?}: post-recovery epoch");
        assert_eq!(
            digest(&fast),
            digest(&locked),
            "kill {kp:?}: post-recovery plane vs locked oracle"
        );

        // Re-run to convergence: the plane tracks every replayed and
        // newly-published epoch and lands on the reference snapshot.
        let _ = run_once(&spec, pool.clone());
        let (fast, fast_epoch) = pool.get_with_epoch(&program);
        let (locked, locked_epoch) = pool.get_locked_with_epoch(&program);
        assert_eq!(fast_epoch, locked_epoch, "kill {kp:?}: converged epoch");
        assert_eq!(digest(&fast), digest(&locked), "kill {kp:?}");
        assert_eq!(
            fast_epoch, ref_epoch,
            "kill {kp:?}: re-converges to the reference epoch"
        );
        assert_eq!(
            digest(&fast),
            ref_digest,
            "kill {kp:?}: re-converges to the reference snapshot"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Hung-trial injection never wedges a wave: the watchdog reaps wedged
/// trials (charging their deadline as virtual time), diagnosis still
/// converges or descends the ladder, and no input is lost untracked.
#[test]
fn hung_trials_never_wedge_a_diagnosis_wave() {
    for seed in [7u64, 23, 71] {
        let spec = spec_by_key("squid").unwrap();
        let config = FirstAidConfig {
            faults: fault_scenario("trial-hang", seed).unwrap(),
            ..FirstAidConfig::default()
        };
        let mut fa = FirstAidRuntime::launch((spec.build)(), config, PatchPool::in_memory())
            .expect("runtime launches");
        let w = (spec.workload)(&WorkloadSpec::new(400, &[100, 250]));
        let summary = fa.run(w, None);
        assert_eq!(
            summary.served + summary.dropped,
            400,
            "seed {seed}: every input is accounted for — nothing wedged"
        );
        assert!(
            summary.degradation.trial_hangs > 0,
            "seed {seed}: the 25% hang plan really fired"
        );
        assert!(
            summary.recoveries > 0,
            "seed {seed}: recovery still completes under hangs"
        );
    }
}

/// Flap quarantine end to end: a patch revoked three times fleet-wide is
/// quarantined; re-admission is denied through an exponential window,
/// then admitted as a canary visible to a single worker only; the
/// canary neutralizing a real trigger promotes it fleet-wide.
#[test]
fn flapping_patch_readmits_via_single_worker_canary() {
    let spec = spec_by_key("squid").unwrap();
    let fleet = Fleet::new(
        spec.build,
        FleetConfig {
            workers: 2,
            ..FleetConfig::default()
        },
    );

    // Phase 1: one worker diagnoses the bug; the patch is pooled.
    let r1 = fleet.run(sharded_stream(&spec, &[vec![20], vec![]], 50, 81));
    assert_eq!(r1.patched, 1);
    let pool = fleet.pool().clone();
    let patches: Vec<Patch> = pool.get("squid").patches().to_vec();
    assert_eq!(patches.len(), 1);
    let site = patches[0].site;

    // The patch flaps: the health monitor revokes it, re-diagnosis
    // re-admits it after its denial window, and it is revoked again —
    // three flaps and the site is quarantined.
    for flap in 1..=3u32 {
        assert!(pool.revoke("squid", site), "flap {flap} revokes");
        if flap < 3 {
            let worker0 = pool.for_worker(0);
            while pool.is_revoked("squid", site) {
                worker0.add("squid", patches.clone());
            }
        }
    }
    assert!(pool.is_quarantined("squid", site));
    assert_eq!(pool.flap_count("squid", site), 3);
    assert!(pool.get("squid").is_empty());

    // Fleet-wide re-publication of a quarantined site is refused flat.
    assert_eq!(pool.add("squid", patches.clone()), 0);
    assert!(pool.get("squid").is_empty());

    // Worker-scoped re-admission serves the (doubled) denial window,
    // then admits the patch as a canary on that worker alone: the rest
    // of the fleet must not see it until it is validated.
    let worker0 = pool.for_worker(0);
    let mut denials = 0;
    while !pool.has_canary("squid", site) {
        assert!(denials < 64, "denial window is finite");
        worker0.add("squid", patches.clone());
        denials += 1;
    }
    assert!(
        denials > 1,
        "quarantine denial window really paced re-admission"
    );
    assert_eq!(worker0.get("squid").len(), 1, "canary visible to worker 0");
    assert!(
        pool.get("squid").is_empty(),
        "unscoped view: not re-propagated"
    );
    assert!(
        pool.for_worker(1).get("squid").is_empty(),
        "worker 1: not re-propagated"
    );

    // Phase 2: worker 0's canary neutralizes a real trigger (patch hit
    // -> the worker confirms the canary); the promoted patch then
    // protects worker 1's much later trigger. No failures anywhere.
    let r2 = fleet.run(sharded_stream(&spec, &[vec![2], vec![45]], 50, 82));
    assert_eq!(r2.failures, 0, "canary neutralized both triggers");
    assert_eq!(r2.patch_hits, 2, "both workers hit the patch");
    assert!(
        !pool.is_quarantined("squid", site),
        "promotion lifts quarantine"
    );
    assert!(
        !pool.is_revoked("squid", site),
        "promotion lifts the tombstone"
    );
    assert!(!pool.has_canary("squid", site), "canary resolved");
    assert_eq!(pool.get("squid").len(), 1, "patch is fleet-wide again");
}
