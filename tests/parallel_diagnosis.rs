//! Property: the diagnosis engine's verdict is deterministic in
//! [`EngineConfig::parallelism`]. Speculative waves may only change how
//! much virtual time a diagnosis charges (max over a wave instead of the
//! sum), never *what* it concludes — same bugs, same call-sites, same
//! checkpoint, same rollback count, even under injected pipeline faults
//! whose shared counters are order-sensitive.

use fa_allocext::ExtAllocator;
use fa_apps::{fault_scenario, AppSpec, WorkloadSpec};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager};
use first_aid::core::{DiagnosisEngine, DiagnosisOutcome, EngineConfig};
use first_aid::prelude::*;

/// Feeds the spec's workload into a fresh process, forcing a checkpoint
/// every few successful inputs, until the bug fails the process.
fn build_failed(spec: &AppSpec) -> (Process, CheckpointManager) {
    let mut ctx = ProcessCtx::new(1 << 28);
    ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
    let mut p = Process::launch((spec.build)(), ctx).unwrap();
    let mut mgr = CheckpointManager::new(AdaptiveConfig::default(), 16);
    mgr.force_checkpoint(&mut p);
    let w = (spec.workload)(&WorkloadSpec::new(600, &[100]));
    let mut ok_steps = 0usize;
    for input in w {
        if !p.feed(input).is_ok() {
            break;
        }
        ok_steps += 1;
        if ok_steps.is_multiple_of(25) {
            mgr.force_checkpoint(&mut p);
        }
    }
    assert!(
        p.failure.is_some(),
        "{}: the trigger input must fail the process",
        spec.key
    );
    (p, mgr)
}

/// Everything the diagnosis concluded, minus the quantities the wave
/// model is allowed to change (`elapsed_ns` and deadline-dependent log
/// text).
fn fingerprint(outcome: &DiagnosisOutcome) -> String {
    match outcome {
        DiagnosisOutcome::Diagnosed(d) => {
            let bugs: Vec<String> = d
                .bugs
                .iter()
                .map(|b| format!("{}@{:x?}", b.bug, b.sites))
                .collect();
            format!(
                "diagnosed ckpt={} rollbacks={} until={} bugs={}",
                d.checkpoint_id,
                d.rollbacks,
                d.until_cursor,
                bugs.join(";")
            )
        }
        DiagnosisOutcome::NonDeterministic { rollbacks, .. } => {
            format!("nondeterministic rollbacks={rollbacks}")
        }
        DiagnosisOutcome::NonPatchable { rollbacks, .. } => {
            format!("nonpatchable rollbacks={rollbacks}")
        }
    }
}

/// Diagnoses a freshly-built failure at the given width and fault
/// scenario, returning the fingerprint plus the engine's retry and
/// speculation counters.
fn diagnose_at(
    spec: &AppSpec,
    parallelism: usize,
    scenario: &str,
    seed: u64,
) -> (String, usize, usize) {
    let (mut p, mgr) = build_failed(spec);
    let config = EngineConfig {
        parallelism,
        ..EngineConfig::default()
    };
    let plan = fault_scenario(scenario, seed).expect("known scenario");
    let engine = DiagnosisEngine::with_faults(config, plan);
    let outcome = engine.diagnose(&mut p, &mgr);
    (
        fingerprint(&outcome),
        engine.retries_used(),
        engine.speculative_trials(),
    )
}

#[test]
fn diagnosis_is_deterministic_across_parallelism() {
    let mut speculated_somewhere = false;
    for spec in fa_apps::all_specs() {
        let (seq, seq_retries, _) = diagnose_at(&spec, 1, "none", 0);
        for width in [4, 8] {
            let (par, par_retries, launched) = diagnose_at(&spec, width, "none", 0);
            assert_eq!(
                seq, par,
                "{}: parallelism {width} changed the diagnosis",
                spec.key
            );
            assert_eq!(seq_retries, par_retries, "{}", spec.key);
            speculated_somewhere |= launched > 0;
        }
    }
    assert!(
        speculated_somewhere,
        "the parallel scheduler never launched a speculative trial"
    );
}

#[test]
fn diagnosis_is_deterministic_under_fault_injection() {
    for key in ["apache", "squid", "cvs"] {
        let spec = fa_apps::spec_by_key(key).unwrap();
        for scenario in ["flaky-reexec", "kitchen-sink"] {
            for seed in [3u64, 17] {
                let (seq, seq_retries, _) = diagnose_at(&spec, 1, scenario, seed);
                let (par, par_retries, _) = diagnose_at(&spec, 4, scenario, seed);
                assert_eq!(
                    seq, par,
                    "{key}/{scenario}/seed {seed}: parallelism changed the diagnosis"
                );
                assert_eq!(
                    seq_retries, par_retries,
                    "{key}/{scenario}/seed {seed}: fault-gate consultation diverged"
                );
            }
        }
    }
}
