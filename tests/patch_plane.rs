//! Multi-threaded stress of the lock-free patch plane.
//!
//! The pool's read path is an RCU-style snapshot directory: readers do
//! one atomic pointer load per query while writers publish rebuilt
//! snapshots behind the pool mutex. This suite hammers that protocol
//! from concurrent OS threads and asserts the guarantees downstream
//! code leans on:
//!
//! * **No torn snapshots** — a reader never observes a patch set mixing
//!   programs or half-applied mutations; every snapshot it sees was
//!   fully published by exactly one writer.
//! * **Monotone epochs** — per program, the epoch a reader observes
//!   never moves backwards, and an unchanged epoch always hands back
//!   the *same* `Arc` (pointer-equal: no clone, no rebuild).
//! * **Oracle agreement** — once writers quiesce, the lock-free view is
//!   byte-identical to the retired mutex-and-clone path
//!   (`get_locked`), which stays in the tree as the correctness
//!   baseline.
//!
//! Everything is seeded; failures reproduce deterministically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fa_proc::{CallSite, SymbolTable};
use first_aid::prelude::*;

/// Splitmix64 — the repo's standard seeded stream.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn patch_at(bug: BugType, id: u64) -> Patch {
    Patch::new(bug, CallSite([id, 0, 0]), &SymbolTable::new())
}

/// Canonical, order-insensitive digest of a patch set.
fn digest(set: &PatchSet) -> Vec<String> {
    let mut rows: Vec<String> = set.patches().iter().map(|p| format!("{p:?}")).collect();
    rows.sort();
    rows
}

/// Each program owns a disjoint call-site id range; a snapshot holding
/// a site outside its program's range is torn or cross-contaminated.
const PROGRAMS: [&str; 3] = ["apache", "squid", "m4"];
const SITE_RANGE: u64 = 40;

fn site_base(program_idx: usize) -> u64 {
    1_000 * (program_idx as u64 + 1)
}

#[test]
fn concurrent_writers_never_tear_reader_snapshots() {
    let pool = PatchPool::in_memory();
    let stop = Arc::new(AtomicBool::new(false));
    const OPS_PER_WRITER: u64 = 400;

    std::thread::scope(|s| {
        // One writer per program, each with its own seeded op stream:
        // adds dominate, with removes and revocations mixed in so the
        // plane sees entry replacement, shrinkage, and tombstones.
        let writers: Vec<_> = PROGRAMS
            .iter()
            .enumerate()
            .map(|(idx, program)| {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut rng = 0xDEC0 + idx as u64;
                    let base = site_base(idx);
                    for _ in 0..OPS_PER_WRITER {
                        let id = base + splitmix64_next(&mut rng) % SITE_RANGE;
                        match splitmix64_next(&mut rng) % 8 {
                            0 => {
                                pool.remove_site(program, CallSite([id, 0, 0]));
                            }
                            1 => {
                                pool.revoke(program, CallSite([id, 0, 0]));
                            }
                            _ => {
                                let bug = if id.is_multiple_of(2) {
                                    BugType::BufferOverflow
                                } else {
                                    BugType::DanglingRead
                                };
                                pool.add(program, [patch_at(bug, id)]);
                            }
                        }
                    }
                })
            })
            .collect();

        // Two readers per program, spinning on the lock-free path until
        // the writers quiesce.
        for (idx, program) in PROGRAMS.iter().enumerate() {
            for _ in 0..2 {
                let pool = pool.clone();
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let base = site_base(idx);
                    let mut last_epoch = 0u64;
                    let mut last_set: Option<Arc<PatchSet>> = None;
                    let mut observed = 0u64;
                    loop {
                        let done = stop.load(Ordering::Acquire);
                        let (set, epoch) = pool.get_with_epoch(program);
                        assert!(
                            epoch >= last_epoch,
                            "{program}: epoch moved backwards ({epoch} < {last_epoch})"
                        );
                        if epoch == last_epoch {
                            if let Some(prev) = &last_set {
                                assert!(
                                    Arc::ptr_eq(prev, &set),
                                    "{program}: same epoch {epoch} returned a different Arc"
                                );
                            }
                        }
                        for p in set.patches() {
                            let id = p.site.0[0];
                            assert!(
                                (base..base + SITE_RANGE).contains(&id),
                                "{program}: torn snapshot leaked foreign site {id}"
                            );
                        }
                        observed += u64::from(epoch != last_epoch);
                        last_epoch = epoch;
                        last_set = Some(set);
                        if done {
                            break;
                        }
                    }
                    assert!(observed > 0, "{program}: reader saw no publishes at all");
                });
            }
        }

        for w in writers {
            w.join().expect("writer thread");
        }
        stop.store(true, Ordering::Release);
    });

    // Writers have quiesced (scope joined): the lock-free plane must
    // agree exactly with the locked oracle for every program.
    for program in PROGRAMS {
        let (fast, fast_epoch) = pool.get_with_epoch(program);
        let (oracle, oracle_epoch) = pool.get_locked_with_epoch(program);
        assert_eq!(fast_epoch, oracle_epoch, "{program}: epoch mismatch");
        assert_eq!(
            digest(&fast),
            digest(&oracle),
            "{program}: lock-free plane diverged from the locked oracle"
        );
        assert_eq!(fast.patches().len(), pool.len(program));
    }
}

#[test]
fn worker_scoped_views_stay_consistent_under_stress() {
    // Canary overlays are per-worker snapshots rebuilt at publish time;
    // under quarantine churn a scoped reader must see base + canary
    // atomically — never a half-merged tear — and unscoped readers must
    // never see canaries at all.
    let pool = PatchPool::in_memory().with_quarantine(QuarantinePolicy {
        quarantine_after: 2,
        max_window: 2,
    });
    let program = "bc";
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // The writer mutates through a worker-0 scope: revocations past
        // the flap threshold quarantine the site, scoped re-adds fly
        // canaries (after riding out the denial window), and
        // confirm_canary promotes them fleet-wide.
        let writer = {
            let scoped = pool.for_worker(0);
            s.spawn(move || {
                let mut rng = 0xCAFE_u64;
                for round in 0..90u64 {
                    let id = 1 + splitmix64_next(&mut rng) % 8;
                    let p = patch_at(BugType::DoubleFree, id);
                    scoped.add(program, [p.clone()]);
                    if round % 3 == 0 {
                        scoped.revoke(program, CallSite([id, 0, 0]));
                        scoped.revoke(program, CallSite([id, 0, 0]));
                        // Retry through the denial window until the
                        // canary is admitted (or the site was never
                        // quarantined and the add publishes directly).
                        for _ in 0..4 {
                            scoped.add(program, [p.clone()]);
                        }
                    }
                    if round % 5 == 0 {
                        scoped.confirm_canary(program);
                    }
                }
            })
        };

        let unscoped = {
            let pool = pool.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut polls = 0u64;
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let set = pool.get(program);
                    // Unscoped views never include canary overlays and
                    // draw only from the 8 base sites.
                    assert!(set.patches().len() <= 8);
                    for p in set.patches() {
                        assert!((1..=8).contains(&p.site.0[0]));
                    }
                    polls += 1;
                    if done {
                        break;
                    }
                }
                polls
            })
        };

        let scoped_reader = {
            let worker0 = pool.for_worker(0);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last_epoch = 0u64;
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let (set, epoch) = worker0.get_with_epoch(program);
                    assert!(epoch >= last_epoch, "scoped epoch went backwards");
                    last_epoch = epoch;
                    // The scoped overlay is base + canaries, all from
                    // the same 8-site namespace.
                    for p in set.patches() {
                        assert!((1..=8).contains(&p.site.0[0]));
                    }
                    if done {
                        break;
                    }
                }
            })
        };

        writer.join().expect("writer thread");
        stop.store(true, Ordering::Release);
        assert!(unscoped.join().unwrap() > 0);
        scoped_reader.join().unwrap();
    });

    // Quiesced: scoped and unscoped views both agree with their locked
    // oracles.
    assert!(!pool.get(program).patches().is_empty());
    assert_eq!(
        digest(&pool.get(program)),
        digest(&pool.get_locked(program))
    );
    let w0 = pool.for_worker(0);
    assert_eq!(digest(&w0.get(program)), digest(&w0.get_locked(program)));
}
