//! Cross-crate integration tests of the full First-Aid pipeline over the
//! paper's application suite.

use fa_apps::{all_specs, spec_by_key, WorkloadSpec};
use first_aid::prelude::*;

fn run_case(
    key: &str,
    triggers: &[usize],
) -> (FirstAidRuntime, first_aid::core::runtime::RunSummary) {
    let spec = spec_by_key(key).unwrap_or_else(|| panic!("{key} registered"));
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool).unwrap();
    let w = (spec.workload)(&WorkloadSpec::new(1_500, triggers));
    let summary = fa.run(w, None);
    (fa, summary)
}

#[test]
fn every_paper_app_survives_and_prevents() {
    for spec in all_specs() {
        let (fa, summary) = run_case(spec.key, &[400, 800, 1_100]);
        assert_eq!(
            summary.failures, 1,
            "{}: only the first of three triggers may fail",
            spec.key
        );
        assert_eq!(summary.dropped, 0, "{}: nothing dropped", spec.key);
        let rec = &fa.recoveries[0];
        let diag = rec
            .diagnosis
            .as_ref()
            .unwrap_or_else(|| panic!("{}: diagnosis must complete", spec.key));
        assert_eq!(
            diag.bugs.len(),
            1,
            "{}: one bug type expected, got {:?}",
            spec.key,
            diag.bugs
        );
        assert_eq!(diag.bugs[0].bug, spec.expect_bug, "{}", spec.key);
        assert_eq!(
            rec.patches.len(),
            spec.expect_sites,
            "{}: expected {} patched call-sites (paper Table 3)",
            spec.key,
            spec.expect_sites
        );
        assert!(
            rec.validation.as_ref().is_some_and(|v| v.consistent),
            "{}: patches must validate",
            spec.key
        );
    }
}

#[test]
fn recovery_is_deterministic_across_runs() {
    let (fa1, s1) = run_case("m4", &[400]);
    let (fa2, s2) = run_case("m4", &[400]);
    assert_eq!(s1.failures, s2.failures);
    assert_eq!(s1.wall_ns, s2.wall_ns, "virtual time must be reproducible");
    let d1 = fa1.recoveries[0].diagnosis.as_ref().unwrap();
    let d2 = fa2.recoveries[0].diagnosis.as_ref().unwrap();
    assert_eq!(d1.rollbacks, d2.rollbacks);
    assert_eq!(d1.elapsed_ns, d2.elapsed_ns);
    assert_eq!(
        fa1.recoveries[0].patches, fa2.recoveries[0].patches,
        "identical patches"
    );
}

#[test]
fn patch_pool_shared_across_processes_of_same_program() {
    // Paper §2: patches apply to "other processes running the same
    // executable". Process A learns the patch; process B, already
    // running, picks it up on its next recovery-free execution... here B
    // is launched after A's recovery and must be protected immediately.
    let spec = spec_by_key("mutt").unwrap();
    let pool = PatchPool::in_memory();
    let mut a =
        FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool.clone()).unwrap();
    let w = (spec.workload)(&WorkloadSpec::new(900, &[400]));
    let sa = a.run(w, None);
    assert_eq!(sa.failures, 1);

    let mut b = FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool).unwrap();
    let w = (spec.workload)(&WorkloadSpec::new(900, &[100, 500]));
    let sb = b.run(w, None);
    assert_eq!(sb.failures, 0, "process B inherits process A's patch");
}

#[test]
fn pools_do_not_mix_between_programs() {
    // Paper §3: "First-Aid maintains a patch pool for each program so
    // that the patches do not mix for different programs."
    let pool = PatchPool::in_memory();
    let (squid, pine) = (spec_by_key("squid").unwrap(), spec_by_key("pine").unwrap());
    let mut fa =
        FirstAidRuntime::launch((squid.build)(), FirstAidConfig::default(), pool.clone()).unwrap();
    let _ = fa.run((squid.workload)(&WorkloadSpec::new(900, &[400])), None);
    assert!(pool.len("squid") >= 1);
    assert_eq!(pool.len("pine"), 0);
    // Pine still fails on its own bug (squid's patch does not apply).
    let mut fa =
        FirstAidRuntime::launch((pine.build)(), FirstAidConfig::default(), pool.clone()).unwrap();
    let s = fa.run((pine.workload)(&WorkloadSpec::new(900, &[400])), None);
    assert_eq!(s.failures, 1);
    assert!(pool.len("pine") >= 1);
}

#[test]
fn bug_reports_name_the_culprit_code() {
    let (fa, _) = run_case("apache", &[400]);
    let report = fa.recoveries[0].report.as_ref().unwrap().to_string();
    // The report must point developers at the LDAP cache purge path
    // (paper Fig. 5).
    assert!(report.contains("util_ald_free"), "{report}");
    assert!(report.contains("util_ald_cache_purge"), "{report}");
    assert!(report.contains("delay free"), "{report}");
    assert!(
        report.contains("util_ald_cache_fetch"),
        "illegal-access trace names the reading function: {report}"
    );
}

#[test]
fn table3_claims_hold_for_bc_multi_site_overflow() {
    // BC has two overflow bugs reached through three call-sites; one
    // exposing run identifies all three (paper Table 3: add padding(3)).
    let (fa, _) = run_case("bc", &[400]);
    let rec = &fa.recoveries[0];
    assert_eq!(rec.patches.len(), 3);
    let names: Vec<&str> = rec
        .patches
        .iter()
        .flat_map(|p| p.site_names.iter().map(String::as_str))
        .collect();
    assert!(names.contains(&"more_arrays"), "{names:?}");
    assert!(names.contains(&"store_string"), "{names:?}");
}
