//! Fleet immunization end-to-end: with a shared patch pool, one worker's
//! diagnosis protects the whole fleet; without sharing, every worker
//! pays for its own.

use first_aid::apps::{fleet::sharded_stream, spec_by_key};
use first_aid::fleet::{Fleet, FleetConfig, PoolSharing};

const WORKERS: usize = 3;

fn fleet(sharing: PoolSharing) -> Fleet {
    let spec = spec_by_key("squid").unwrap();
    Fleet::new(
        spec.build,
        FleetConfig {
            workers: WORKERS,
            sharing,
            ..FleetConfig::default()
        },
    )
}

#[test]
fn shared_pool_one_diagnosis_immunizes_the_fleet() {
    let spec = spec_by_key("squid").unwrap();
    let fleet = fleet(PoolSharing::Shared);

    // Phase 1: only worker 0's shard carries a trigger.
    let phase1 = sharded_stream(&spec, &[vec![30], vec![], vec![]], 80, 21);
    let r1 = fleet.run(phase1);
    assert_eq!(r1.failures, 1, "only the triggered worker fails");
    assert_eq!(r1.patched, 1, "exactly one worker pays the diagnosis");
    assert!(r1.rollbacks > 0, "diagnosis rolled back and re-executed");
    assert_eq!(fleet.pool().len("squid"), 1, "the patch is pooled");

    // Phase 2: every worker's first post-patch trigger. The pool already
    // holds the patch, so the whole fleet neutralizes its trigger with
    // no failure, no recovery, and zero rollbacks.
    let phase2 = sharded_stream(&spec, &[vec![15], vec![15], vec![15]], 50, 22);
    let r2 = fleet.run(phase2);
    assert_eq!(r2.failures, 0, "no worker fails post-patch");
    assert_eq!(r2.recoveries, 0, "no diagnosis needed");
    assert_eq!(r2.rollbacks, 0, "prevention costs zero rollbacks");
    assert_eq!(
        r2.patch_hits, WORKERS,
        "each worker's trigger was neutralized by the shared patch"
    );
    assert_eq!(r2.served, WORKERS * 50, "every input served");
    assert!(
        r2.time_to_fleet_immunity_ns.is_some(),
        "fleet immunity is reached (at launch, from the warm pool)"
    );
    for w in &r2.workers {
        assert_eq!(w.failures, 0, "worker {} is immunized", w.worker);
        assert_eq!(
            w.patch_hits, 1,
            "worker {} neutralized its trigger",
            w.worker
        );
    }
}

#[test]
fn per_worker_pools_force_independent_diagnoses() {
    let spec = spec_by_key("squid").unwrap();
    let fleet = fleet(PoolSharing::PerWorker);

    // Every shard triggers once: with private pools there is nobody to
    // learn from, so every worker diagnoses the same bug itself.
    let stream = sharded_stream(&spec, &[vec![30], vec![30], vec![30]], 80, 23);
    let report = fleet.run(stream);
    assert_eq!(report.failures, WORKERS, "every worker fails once");
    assert_eq!(
        report.patched, WORKERS,
        "every worker pays its own diagnosis"
    );
    for w in &report.workers {
        assert_eq!(w.patched, 1, "worker {} diagnosed independently", w.worker);
        assert!(w.rollbacks > 0, "worker {} paid rollbacks", w.worker);
        assert!(w.immunized_at_ns.is_some());
    }
    // The shared pool the Fleet owns was never used: nothing in it.
    assert!(fleet.pool().is_empty("squid"));
}

#[test]
fn fleet_patches_persist_through_a_shared_persistent_pool() {
    use first_aid::core::PatchPool;

    let spec = spec_by_key("squid").unwrap();
    let dir = std::env::temp_dir().join(format!("fa-fleet-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    {
        let fleet = fleet(PoolSharing::Shared).with_pool(PatchPool::persistent(&dir).unwrap());
        let stream = sharded_stream(&spec, &[vec![30], vec![], vec![]], 80, 31);
        let r = fleet.run(stream);
        assert_eq!(r.patched, 1);
    }

    // A brand-new fleet (a later deployment) starts immunized from disk.
    {
        let fleet = fleet(PoolSharing::Shared).with_pool(PatchPool::persistent(&dir).unwrap());
        let stream = sharded_stream(&spec, &[vec![10], vec![10], vec![10]], 40, 32);
        let r = fleet.run(stream);
        assert_eq!(r.failures, 0);
        assert_eq!(r.patch_hits, WORKERS);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
