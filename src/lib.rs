//! # First-Aid
//!
//! A Rust reproduction of *"First-Aid: Surviving and Preventing Memory
//! Management Bugs during Production Runs"* (Gao, Zhang, Tang, Qin —
//! EuroSys 2009).
//!
//! First-Aid is a lightweight runtime that survives failures caused by
//! common memory management bugs — buffer overflow, dangling pointer
//! read/write, double free, uninitialized read — and *prevents their
//! reoccurrence* with call-site-targeted runtime patches. Upon a failure
//! it rolls the program back to checkpoints and re-executes it under
//! combinations of **exposing** and **preventive** environmental changes
//! to identify the bug type and the triggering memory objects, then
//! generates, applies, validates, and persists runtime patches, and
//! produces an on-site diagnostic bug report.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`mem`] — simulated paged memory with COW snapshots ([`fa_mem`]),
//! * [`heap`] — a Lea-style allocator with in-band boundary tags
//!   ([`fa_heap`]),
//! * [`proc`] — the deterministic process substrate: apps, call stacks,
//!   input replay, virtual time ([`fa_proc`]),
//! * [`allocext`] — the memory allocator extension: canary, padding,
//!   delay-free quarantine, patches, traces ([`fa_allocext`]),
//! * [`checkpoint`] — checkpoint ring + adaptive interval controller
//!   ([`fa_checkpoint`]),
//! * [`exec`] — the unified trial-execution substrate: replay harness,
//!   trial specs and substrates, pooled trial contexts ([`fa_exec`]),
//! * [`core`] — the diagnosis engine, patch pool, validation engine, bug
//!   reports, supervisor runtime, and the Rx/restart baselines
//!   ([`first_aid_core`]),
//! * [`apps`] — the seven evaluated applications and benchmark profiles
//!   ([`fa_apps`]),
//! * [`fleet`] — the concurrent fleet supervisor: N supervised processes
//!   of one program sharing a patch pool, so a single diagnosis
//!   immunizes the whole fleet ([`fa_fleet`]).
//!
//! # Quick start
//!
//! ```
//! use first_aid::prelude::*;
//!
//! // A tiny app with an overflow bug on op == 1.
//! #[derive(Clone, Default)]
//! struct Demo;
//! impl App for Demo {
//!     fn name(&self) -> &'static str { "demo" }
//!     fn handle(&mut self, ctx: &mut ProcessCtx, i: &Input) -> Result<Response, Fault> {
//!         ctx.call("serve", |ctx| {
//!             let buf = ctx.malloc(64)?;
//!             let n = if i.op == 1 { 96 } else { 64 }; // bug!
//!             ctx.fill(buf, n, 0x41)?;
//!             ctx.free(buf)?;
//!             Ok(Response::bytes(64))
//!         })
//!     }
//!     fn clone_app(&self) -> BoxedApp { Box::new(self.clone()) }
//! }
//!
//! let pool = PatchPool::in_memory();
//! let mut fa = FirstAidRuntime::launch(Box::new(Demo), FirstAidConfig::default(), pool).unwrap();
//! for k in 0..50u32 {
//!     let input = InputBuilder::op(u32::from(k == 25)).gap_us(500).build();
//!     let out = fa.feed(input);
//!     assert!(out.served);
//! }
//! // One failure, one recovery, a buffer-overflow patch installed.
//! assert_eq!(fa.recoveries.len(), 1);
//! assert_eq!(fa.recoveries[0].patches[0].bug, BugType::BufferOverflow);
//! ```

pub use fa_allocext as allocext;
pub use fa_apps as apps;
pub use fa_checkpoint as checkpoint;
pub use fa_exec as exec;
pub use fa_fleet as fleet;
pub use fa_heap as heap;
pub use fa_mem as mem;
pub use fa_proc as proc;
pub use first_aid_core as core;

/// The most commonly used items in one import.
pub mod prelude {
    pub use fa_allocext::{BugType, ExtAllocator, Patch, PatchSet, PreventiveChange};
    pub use fa_fleet::{
        CellTopology, DispatchPolicy, Fleet, FleetConfig, FleetReport, PoolSharing, ScaleConfig,
        ScaleFleet, WorkerReport,
    };
    pub use fa_mem::{Addr, SimMemory};
    pub use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, Process, ProcessCtx, Response};
    pub use first_aid_core::{
        BugReport, EventCursor, EventPoll, FirstAidConfig, FirstAidRuntime, PatchPool, PoolEvent,
        PoolEventKind, PoolEvents, QuarantinePolicy, RestartRuntime, RxRuntime, SentryConfig,
        SentryMetrics, TrapKind, TrapRecord,
    };
}
