#!/usr/bin/env bash
# The full local CI gate: build, tests, formatting, lints.
# The build environment is offline; all dependencies are path deps
# (crates/* and the vendored shims/*), so --offline must always work.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo test -q --offline -p fa-faults
cargo fmt --check
cargo clippy -q --offline --workspace --all-targets -- -D warnings

# Fault-injection liveness gate: every named scenario must leave the
# runtime live (input conservation is asserted inside the bench).
cargo run --release --offline -p fa-bench --bin faults -- --check

# Performance regression gate: wall-clock throughput and snapshot cost
# vs the committed results/perf.json baseline, plus the >=2x
# virtual-time speedup of parallel diagnosis on Apache and Squid.
cargo run --release --offline -p fa-bench --bin perf -- --check

# Sentry gate: at rate 1/64 the mean allocator overhead must stay under
# the 5% always-on budget and at least one run must be caught before its
# organic crash point; the sweep is virtual-clock-deterministic, so the
# comparison against results/sentry.json is exact.
cargo run --release --offline -p fa-bench --bin sentry -- --check

# Crash-safety gate: a killed supervisor must recover its journaled
# state in under 5% of a cold fleet start, lose zero patch epochs,
# re-converge byte-identically, and stay immunized. (The per-kill-point
# acceptance sweep runs in the root test suite: crash_supervision.rs.)
cargo run --release --offline -p fa-bench --bin crash -- --check

# Patch-plane scale gate: lock-free reads must beat the locked baseline
# by >=5x under contention, time-to-fleet-immunity must stay sublinear
# from 10^2 to 10^5 workers, and the virtual-time propagation outputs
# must match results/fleet_scale.json exactly (seeded + deterministic).
# Single-worker throughput regressions are covered by the perf gate
# above; this gate covers the fleet-scale query path.
cargo run --release --offline -p fa-bench --bin fleet_scale -- --check
