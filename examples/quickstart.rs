//! Quickstart: put a buggy application under First-Aid supervision and
//! watch it survive, patch, and prevent a buffer overflow.
//!
//! Run with: `cargo run --example quickstart`

use first_aid::prelude::*;

/// A miniature service with a length-miscalculation overflow: requests
/// with op == 1 write 24 bytes past a 64-byte buffer, corrupting heap
/// metadata, which eventually aborts the allocator.
#[derive(Clone, Default)]
struct TinyServer {
    served: u64,
}

impl App for TinyServer {
    fn name(&self) -> &'static str {
        "tiny-server"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("handle_request", |ctx| {
            ctx.call("render_response", |ctx| {
                let buf = ctx.malloc(64)?;
                // BUG: op 1 requests under-count the response length.
                let len = if input.op == 1 { 88 } else { 64 };
                ctx.fill(buf, len, b'+')?;
                ctx.free(buf)?;
                self.served += 1;
                Ok(Response::bytes(64))
            })
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

fn main() {
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch(
        Box::new(TinyServer::default()),
        FirstAidConfig::default(),
        pool.clone(),
    )
    .expect("launch");

    println!("Feeding 2000 requests; every 400th triggers the overflow bug...\n");
    let mut failures = 0;
    for i in 0..2000u32 {
        let op = u32::from(i > 0 && i % 400 == 0);
        let out = fa.feed(InputBuilder::op(op).gap_us(500).build());
        if out.failed {
            failures += 1;
            println!("request {i}: FAILURE caught (trigger #{failures})");
        }
        if let Some(r) = out.recovery {
            let rec = &fa.recoveries[r];
            println!(
                "  -> recovered in {:.3} virtual seconds ({:?})",
                rec.recovery_ns as f64 / 1e9,
                rec.kind
            );
            for p in &rec.patches {
                println!(
                    "  -> runtime patch: {} for {} at {}",
                    p.change.label(),
                    p.bug,
                    p.site_names.join(" <- ")
                );
            }
        }
    }

    println!("\nTotal failures over 4 bug triggers: {failures}");
    println!("(the first trigger fails and is patched; the rest are neutralized)");
    assert_eq!(failures, 1);
    println!(
        "\nPatches now in the pool for '{}': {}",
        fa.program(),
        pool.len(fa.program())
    );
    println!("A future run of this program would be protected from request 0.");
}
