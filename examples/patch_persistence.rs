//! Patch persistence: "First-Aid stores the generated patches persistently
//! to prevent the bug from occurring on subsequent runs or on other
//! processes running the same program" (paper §1.2).
//!
//! This example runs the Squid overflow case twice against an on-disk
//! patch pool: the first run fails once and learns the patch; the second
//! run — a fresh "process" of the same executable — is protected from its
//! very first request.
//!
//! Run with: `cargo run --release --example patch_persistence`

use fa_apps::{spec_by_key, WorkloadSpec};
use first_aid::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("first-aid-example-pool");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = spec_by_key("squid").expect("squid registered");

    println!("patch pool directory: {}\n", dir.display());

    // ---- first run: the bug is new ----
    {
        let pool = PatchPool::persistent(&dir).expect("create pool");
        let mut fa =
            FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool).unwrap();
        let w = (spec.workload)(&WorkloadSpec::new(1_200, &[400, 800]));
        let summary = fa.run(w, None);
        println!(
            "run 1: failures={} recoveries={}",
            summary.failures, summary.recoveries
        );
        assert_eq!(summary.failures, 1);
        let patch_file = dir.join("squid.patches.json");
        let json = std::fs::read_to_string(&patch_file).expect("patch file written");
        println!(
            "run 1: persisted {} bytes of patches:\n{json}\n",
            json.len()
        );
    }

    // ---- second run: protected from the start ----
    {
        let pool = PatchPool::persistent(&dir).expect("reopen pool");
        println!("run 2: loaded {} patch(es) from disk", pool.len("squid"));
        let mut fa =
            FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool).unwrap();
        // Trigger the bug immediately and repeatedly.
        let w = (spec.workload)(&WorkloadSpec::new(1_200, &[10, 300, 600, 900]));
        let summary = fa.run(w, None);
        println!(
            "run 2: failures={} recoveries={} (4 triggers, all neutralized)",
            summary.failures, summary.recoveries
        );
        assert_eq!(
            summary.failures, 0,
            "persisted patch must prevent everything"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nThe same pool protects other concurrent processes of the program:");
    println!("PatchPool clones share state, so a patch learned by one process");
    println!("is applied by every supervised process of the same executable.");
}
