//! The paper's flagship case: Apache's LDAP-cache dangling pointer read
//! (EuroSys 2009, §7.2–7.4 and Fig. 5).
//!
//! The cache purge frees entries through seven different wrappers while
//! search nodes retain the pointers; a revalidation pass hundreds of
//! requests later dereferences them. First-Aid rolls back, identifies the
//! bug type by exposing/preventive changes, binary-searches the seven
//! deallocation call-sites, and installs seven delay-free patches.
//!
//! Run with: `cargo run --release --example surviving_apache`

use fa_apps::{spec_by_key, WorkloadSpec};
use first_aid::prelude::*;

fn main() {
    let spec = spec_by_key("apache").expect("apache registered");
    let pool = PatchPool::in_memory();
    let mut fa =
        FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool).expect("launch");

    // 3000 requests; LDAP maintenance (the bug trigger) at 400, 1200, 2000.
    let workload = (spec.workload)(&WorkloadSpec::new(3_000, &[400, 1_200, 2_000]));
    let summary = fa.run(workload, None);

    println!("served      : {}", summary.served);
    println!(
        "failures    : {}  (3 triggers, only the first fails)",
        summary.failures
    );
    println!("recoveries  : {}", summary.recoveries);
    println!("dropped     : {}", summary.dropped);
    assert_eq!(summary.failures, 1);
    assert_eq!(summary.dropped, 0);

    let rec = &fa.recoveries[0];
    let diag = rec.diagnosis.as_ref().expect("diagnosed");
    println!("\n--- diagnosis ---");
    println!("rollbacks   : {}  (paper: 28)", diag.rollbacks);
    println!(
        "recovery    : {:.3} s  (paper: 3.978 s on 2004 hardware)",
        rec.recovery_ns as f64 / 1e9
    );
    println!(
        "patches     : {}  (paper: delay free x 7)",
        rec.patches.len()
    );
    assert_eq!(rec.patches.len(), 7);

    println!("\n--- bug report (paper Fig. 5) ---\n");
    println!("{}", rec.report.as_ref().expect("report generated"));
}
