//! A tour of First-Aid's diagnostic outputs across all five bug types:
//! runs each injected-bug case from the paper's Table 2 and prints the
//! diagnosis summary and patch information of its bug report.
//!
//! Run with: `cargo run --release --example bug_report_tour`

use fa_apps::{all_specs, WorkloadSpec};
use first_aid::prelude::*;

fn main() {
    for spec in all_specs() {
        let pool = PatchPool::in_memory();
        let mut fa = FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool)
            .expect("launch");
        let w = (spec.workload)(&WorkloadSpec::new(1_500, &[400]));
        let summary = fa.run(w, None);

        println!("==================================================================");
        println!(
            "{} {} — {} ({})",
            spec.display, spec.version, spec.bug_desc, spec.description
        );
        println!("==================================================================");
        let Some(rec) = fa.recoveries.first() else {
            println!("no failure triggered\n");
            continue;
        };
        let Some(diag) = rec.diagnosis.as_ref() else {
            println!("recovery kind: {:?}\n", rec.kind);
            continue;
        };
        println!(
            "failures={} recovery={:.3}s rollbacks={} patches={} validated={}",
            summary.failures,
            rec.recovery_ns as f64 / 1e9,
            diag.rollbacks,
            rec.patches.len(),
            rec.validation.as_ref().is_some_and(|v| v.consistent),
        );
        println!("--- diagnosis log ---");
        for line in &diag.log {
            println!("  {line}");
        }
        println!("--- patches ---");
        for (i, p) in rec.patches.iter().enumerate() {
            println!(
                "  {}: {} for {} @ {}",
                i + 1,
                p.change.label(),
                p.bug,
                p.site_names.join(" <- ")
            );
        }
        println!();
    }
}
