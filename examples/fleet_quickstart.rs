//! Fleet quickstart: three Squid processes, one shared patch pool.
//!
//! The first worker to hit the `ftpBuildTitleUrl` overflow diagnoses it
//! and pools the patch; the other workers pick it up without ever
//! failing. Run with:
//!
//! ```sh
//! cargo run --example fleet_quickstart
//! ```

use first_aid::apps::{fleet::sharded_stream, spec_by_key};
use first_aid::fleet::{Fleet, FleetConfig};

fn main() {
    let spec = spec_by_key("squid").unwrap();
    let fleet = Fleet::new(
        spec.build,
        FleetConfig {
            workers: 3,
            ..FleetConfig::default()
        },
    );

    // Wave 1: only worker 0's traffic carries the bug trigger.
    let wave1 = sharded_stream(&spec, &[vec![40], vec![], vec![]], 120, 7);
    let r1 = fleet.run(wave1);
    println!(
        "wave 1: {} failure(s), {} diagnosis(es), pool now holds {} patch(es)",
        r1.failures,
        r1.patched,
        fleet.pool().len("squid"),
    );

    // Wave 2: every worker gets a trigger — all neutralized by the
    // patch the first diagnosis left in the shared pool.
    let wave2 = sharded_stream(&spec, &[vec![20], vec![20], vec![20]], 60, 8);
    let r2 = fleet.run(wave2);
    println!(
        "wave 2: {} failure(s), {} recoveries, {} patch hit(s) — fleet immunized",
        r2.failures, r2.recoveries, r2.patch_hits,
    );
    for w in &r2.workers {
        println!(
            "  worker {}: {} served, {} failed, immunized at {:.2} s",
            w.worker,
            w.served,
            w.failures,
            w.immunized_at_ns.unwrap_or(0) as f64 / 1e9,
        );
    }
}
