//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the tiny slice of `parking_lot` it uses: [`Mutex`] and [`RwLock`] with
//! guards that do not surface poisoning (a poisoned std lock is simply
//! re-entered, matching parking_lot's panic-transparent behaviour).

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual exclusion primitive (std-backed, poison-transparent).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock (std-backed, poison-transparent).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
