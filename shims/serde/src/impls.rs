//! `Serialize` / `Deserialize` impls for std types.

use std::collections::{BTreeMap, HashMap};

use crate::value::{Number, Value};
use crate::{Deserialize, Error, Serialize};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let n = value.as_u64().ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let n = value.as_i64().ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::expected("array", value))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::msg(format!(
                        "expected {want}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
