//! The JSON value model shared by the `serde` and `serde_json` shims.

use std::ops::Index;

/// A JSON number, preserving integer precision where possible.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// Returns the number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }

    /// Returns the number as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(_) => None,
        }
    }

    /// Returns the number as `f64` (always possible, maybe lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// An ordered map of object members (insertion order preserved).
pub type Map = Vec<(String, Value)>;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered members).
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up an object member.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the object members, if it is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, name: &str) -> &Value {
        self.get_field(name).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
