//! Offline shim for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a minimal serde: [`Serialize`] and [`Deserialize`] convert through the
//! built-in JSON [`Value`] model instead of serde's visitor machinery.
//! The companion `serde_derive` shim generates impls for the struct and
//! enum shapes used in this repository, and the `serde_json` shim prints
//! and parses [`Value`]s. Both ends are under our control, so the
//! simplified data model round-trips everything the repo serializes.

mod impls;
pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization error (also used by the `serde_json` shim).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a free-form message.
    pub fn msg(message: impl Into<String>) -> Error {
        Error(message.into())
    }

    /// Error for a struct field absent from the serialized object.
    pub fn missing_field(name: &str) -> Error {
        Error(format!("missing field `{name}`"))
    }

    /// Error for a value of the wrong JSON type.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the JSON [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the JSON [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}
