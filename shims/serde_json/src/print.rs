//! JSON printing (compact and pretty).

use serde::value::{Number, Value};

/// Prints a value; `indent = None` is compact, `Some(level)` is pretty.
pub fn print(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, value, indent);
    out
}

fn pad(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    pad(out, level + 1);
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                pad(out, level);
            }
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    pad(out, level + 1);
                }
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                pad(out, level);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // `{}` on f64 never uses exponent notation and always
                // round-trips, so the output is valid JSON.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') {
                    out.push_str(".0");
                }
            } else {
                // serde_json prints non-finite numbers as null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
