//! Recursive-descent JSON parsing.

use serde::value::{Number, Value};
use serde::Error;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}
