//! Offline shim for the `serde_json` crate.
//!
//! Prints and parses the vendored `serde` shim's [`Value`] model. The
//! public surface matches what this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`], and [`Error`].

mod parse;
mod print;

pub use serde::value::Number;
pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::print(&value.to_value(), None))
}

/// Serializes a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::print(&value.to_value(), Some(0)))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let s: String = from_str(r#""a\nbA""#).unwrap();
        assert_eq!(s, "a\nbA");
        let f: f64 = from_str("-2.5e2").unwrap();
        assert_eq!(f, -250.0);
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn value_indexing_matches_serde_json() {
        let v: Value = from_str(r#"{"a": [1, {"b": "x"}], "n": 2.5}"#).unwrap();
        assert_eq!(v["a"][1]["b"], "x");
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert!((v["n"].as_f64().unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn pretty_print_is_stable_and_reparsable() {
        let v: Value = from_str(r#"{"name":"first-aid","series":[[0.0,1.5],[0.25,0.0]]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"first-aid\""), "{pretty}");
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let s = "quote \" backslash \\ newline \n tab \t bell \u{7}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
