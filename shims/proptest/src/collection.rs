//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::RngExt;

use crate::Strategy;

/// Strategy for `Vec`s with a length drawn from a range.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// Generates vectors of `elem`-generated values with `len` in `range`.
pub fn vec<S: Strategy>(elem: S, range: Range<usize>) -> VecStrategy<S> {
    assert!(!range.is_empty(), "empty length range");
    VecStrategy { elem, len: range }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.random_range(self.len.clone());
        (0..len).map(|_| self.elem.pick(rng)).collect()
    }
}
