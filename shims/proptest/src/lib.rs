//! Offline shim for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] macros, [`Strategy`] with `prop_map` and `boxed`,
//! ranges / tuples / [`Just`] / [`any`] as strategies, and
//! [`collection::vec`]. Cases are generated from a deterministic
//! per-test seed; failing cases panic immediately **without shrinking**
//! (the case's RNG seed is printed so it can be replayed).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{IntoSampleRange, RngExt, SampleUniform, SeedableRng};

pub mod collection;

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Per-test configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic RNG for one test case (macro plumbing).
pub fn test_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    SmallRng::seed_from_u64(h.finish())
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn pick(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut SmallRng) -> T {
        (**self).pick(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn pick(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T>
where
    Range<T>: IntoSampleRange<T> + Clone,
{
    type Value = T;
    fn pick(&self, rng: &mut SmallRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: IntoSampleRange<T> + Clone,
{
    type Value = T;
    fn pick(&self, rng: &mut SmallRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Weighted choice between type-erased strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut SmallRng) -> T {
        let mut roll = rng.random_range(0..self.total);
        for (weight, strat) in &self.arms {
            if roll < *weight {
                return strat.pick(rng);
            }
            roll -= weight;
        }
        unreachable!("roll below total weight")
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// The [`any`] strategy: full-range values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        rng.random_range(-1.0e9f64..1.0e9)
    }
}

/// The `proptest! { ... }` test-function wrapper.
///
/// Supports an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items. Each function
/// runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) = $crate::Strategy::pick(&strategies, &mut rng);
                $body
            }
        }
    )*};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a proptest case (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a proptest case (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a proptest case (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u16),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (1u16..100).prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(
            ops in prop::collection::vec(op_strategy(), 1..40),
            seed in any::<u64>(),
        ) {
            prop_assert!((1..40).contains(&ops.len()));
            let _ = seed;
            for op in &ops {
                if let Op::Push(v) = op {
                    prop_assert!((1..100).contains(v));
                }
            }
        }

        #[test]
        fn float_ranges_work(frac in 0.0f64..1.0) {
            prop_assert!((0.0..=1.0).contains(&frac));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|case| super::test_rng("x", case).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|case| super::test_rng("x", case).next_u64())
            .collect();
        assert_eq!(a, b);
    }

    use rand::RngExt;
}
