//! Offline shim for the `rand` crate (0.10 API surface).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of `rand` it uses: [`SeedableRng`], [`RngExt`] with
//! `random_range` / `random_bool` / `random_ratio`, and
//! [`rngs::SmallRng`]. The generator is xoshiro256** seeded via
//! splitmix64 — deterministic for a given seed across platforms and
//! builds, which the reproduction's bit-for-bit experiment claims rely
//! on.

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of `rand::Rng`'s extension methods this workspace uses.
pub trait RngExt {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: impl IntoSampleRange<T>) -> T {
        let (lo, hi_inclusive) = range.into_bounds();
        T::sample(self.next_u64(), lo, hi_inclusive)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        to_unit_f64(self.next_u64()) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "{numerator}/{denominator} > 1");
        u64::sample(self.next_u64(), 0, u64::from(denominator) - 1) < u64::from(numerator)
    }
}

fn to_unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a closed range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps 64 random bits into `[lo, hi]` (inclusive).
    fn sample(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((bits as u128) % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + ((bits as i128) & i128::MAX) % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(bits: u64, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range");
        lo + to_unit_f64(bits) * (hi - lo)
    }
}

/// Range arguments accepted by [`RngExt::random_range`].
pub trait IntoSampleRange<T: SampleUniform> {
    /// Returns `(lo, hi_inclusive)`.
    fn into_bounds(self) -> (T, T);
}

impl IntoSampleRange<f64> for Range<f64> {
    fn into_bounds(self) -> (f64, f64) {
        assert!(self.start < self.end, "empty range");
        (self.start, self.end) // treated as half-open by measure zero
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl IntoSampleRange<$t> for Range<$t> {
            fn into_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoSampleRange<$t> for RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngExt for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(512u64..16_384);
            assert!((512..16_384).contains(&v));
            let w = rng.random_range(1u16..=3);
            assert!((1..=3).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(3usize..5);
            assert!((3..5).contains(&u));
        }
    }

    #[test]
    fn ratio_and_bool_are_calibrated() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_ratio(1, 10)).count();
        assert!((800..1200).contains(&hits), "{hits}");
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4700..5300).contains(&heads), "{heads}");
    }
}
