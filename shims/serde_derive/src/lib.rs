//! Offline shim for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls against the vendored
//! `serde` shim's value-model traits. Implemented directly over
//! `proc_macro` token trees (the container has no `syn`/`quote`), so it
//! supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (a 1-field newtype delegates to its inner value, as
//!   real serde does),
//! * enums with unit and newtype variants (externally tagged).
//!
//! Generic types and other exotica are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with N unnamed fields.
    Tuple(usize),
    /// Enum variants: (name, has_newtype_payload).
    Enum(Vec<(String, bool)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Removes `#[...]` attribute pairs from a token list.
fn strip_attrs(tokens: Vec<TokenTree>) -> Vec<TokenTree> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut iter = tokens.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Punct(p) = &tt {
            if p.as_char() == '#' {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        iter.next();
                        continue;
                    }
                }
            }
        }
        out.push(tt);
    }
    out
}

/// Splits a token list on commas at angle-bracket depth 0.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = (angle - 1).max(0),
                ',' if angle == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tt.clone());
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop();
    }
    parts
}

/// Skips a leading visibility (`pub`, `pub(...)`) in a token list.
fn skip_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut rest = tokens;
    if let Some(TokenTree::Ident(id)) = rest.first() {
        if id.to_string() == "pub" {
            rest = &rest[1..];
            if let Some(TokenTree::Group(g)) = rest.first() {
                if g.delimiter() == Delimiter::Parenthesis {
                    rest = &rest[1..];
                }
            }
        }
    }
    rest
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens = strip_attrs(input.into_iter().collect());
    let mut iter = tokens.into_iter().peekable();

    // Visibility.
    let mut kw = None;
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kw = Some(s);
                break;
            }
        }
    }
    let kw = kw.ok_or("derive shim: expected `struct` or `enum`")?;

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive shim: expected type name".into()),
    };

    let body = match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("derive shim: generic type `{name}` unsupported"));
        }
        Some(TokenTree::Group(g)) => g,
        Some(other) => {
            return Err(format!(
                "derive shim: unexpected token `{other}` after `{name}`"
            ))
        }
        None => return Err(format!("derive shim: missing body for `{name}`")),
    };

    let items = strip_attrs(body.stream().into_iter().collect());
    if kw == "struct" {
        match body.delimiter() {
            Delimiter::Brace => {
                let mut fields = Vec::new();
                for part in split_top_commas(&items) {
                    let part = skip_vis(&part);
                    match part.first() {
                        Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                        _ => return Err(format!("derive shim: bad field in `{name}`")),
                    }
                }
                Ok((name, Shape::Named(fields)))
            }
            Delimiter::Parenthesis => Ok((name, Shape::Tuple(split_top_commas(&items).len()))),
            _ => Err(format!("derive shim: unsupported struct body for `{name}`")),
        }
    } else {
        let mut variants = Vec::new();
        for part in split_top_commas(&items) {
            let mut part = part.as_slice();
            let vname = match part.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err(format!("derive shim: bad variant in `{name}`")),
            };
            part = &part[1..];
            let payload = match part.first() {
                None => false,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner = strip_attrs(g.stream().into_iter().collect());
                    if split_top_commas(&inner).len() != 1 {
                        return Err(format!(
                            "derive shim: variant `{name}::{vname}` must be unit or newtype"
                        ));
                    }
                    true
                }
                Some(other) => {
                    return Err(format!(
                        "derive shim: unsupported payload `{other}` in `{name}::{vname}`"
                    ))
                }
            };
            variants.push((vname, payload));
        }
        Ok((name, Shape::Enum(variants)))
    }
}

fn generate(name: &str, shape: &Shape, mode: Mode) -> String {
    match mode {
        Mode::Serialize => generate_serialize(name, shape),
        Mode::Deserialize => generate_deserialize(name, shape),
    }
}

fn generate_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let members: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{members}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(inner) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Serialize::to_value(inner))]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::String(::std::string::String::from({v:?})),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let members: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: <_ as ::serde::Deserialize>::from_value(\
                         value.get_field({f:?}).unwrap_or(&::serde::Value::Null))?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {members} }})")
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(<_ as ::serde::Deserialize>::from_value(value)?))"
        ),
        Shape::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| {
                    format!(
                        "<_ as ::serde::Deserialize>::from_value(\
                         items.get({i}).unwrap_or(&::serde::Value::Null))?,"
                    )
                })
                .collect();
            format!(
                "let items = value.as_array()\
                     .ok_or_else(|| ::serde::Error::expected(\"array\", value))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"expected {n} elements, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, payload)| !payload)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|(_, payload)| *payload)
                .map(|(v, _)| {
                    format!(
                        "if let ::std::option::Option::Some(inner) = value.get_field({v:?}) {{\n\
                             return ::std::result::Result::Ok({name}::{v}(\
                                 <_ as ::serde::Deserialize>::from_value(inner)?));\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(s) = value.as_str() {{\n\
                     return match s {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             ::std::format!(\"unknown variant {{other:?}} of {name}\"))),\n\
                     }};\n\
                 }}\n\
                 {newtype_arms}\n\
                 ::std::result::Result::Err(::serde::Error::expected(\"{name} variant\", value))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
