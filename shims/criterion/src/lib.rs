//! Offline shim for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of criterion's API its benches use. Each benchmark is
//! warmed up briefly, then timed over a fixed sampling budget; results
//! print as one `name: median ns/iter` line. No statistics beyond the
//! median, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing collector passed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, recording the median over several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ≥ ~1 ms, so per-iter cost is resolvable.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }
        let mut samples: Vec<f64> = (0..15)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { median_ns: 0.0 };
    f(&mut b);
    println!("{label}: {:.1} ns/iter", b.median_ns);
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_owned(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, &mut f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Declares the per-iteration throughput (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Sets the sample count (accepted; this shim uses a fixed count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        run_one(&format!("{}/{}", self.name, id.into_label()), &mut f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput declarations (accepted for API compatibility).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier with an optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: &str, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Things accepted as a benchmark id by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
